//! The `serve` daemon: a [`TcpListener`] loop around a [`PatternIndex`].
//!
//! Deliberately dependency-free (no async runtime — the build environment
//! is offline, and blocking I/O is entirely adequate for a line-oriented
//! request/reply protocol whose unit of work is a kernel batch). Each
//! connection gets its own OS thread so an idle client never blocks the
//! others.
//!
//! There is **no server-side lock**: the index is internally sharded and
//! synchronised (see [`crate::index`]), so handler threads share it behind
//! a plain [`Arc`]. `QUERY`/`MQUERY` take shard *read* locks and run
//! concurrently with each other; `INGEST`/`BATCH INGEST` write-lock only
//! the shard that owns each new entry, so writers never stall queries on
//! the other shards. Within a query the index additionally fans the
//! kernel batch out across scoped threads, which is where the actual CPU
//! time goes.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::index::PatternIndex;
use crate::persist::save_index;
use crate::protocol::{
    parse_batch_ingest_item, parse_request, render_hello_reply, render_hello_unsupported,
    render_mquery_reply, render_query_reply, render_stats_reply, MetricsSnapshot, Request,
    PROTOCOL_VERSION,
};

/// Live connection/request counters of a running daemon, shared by every
/// handler thread and reported in the `STATS` reply.
///
/// Counters are plain relaxed atomics: they are observability data with
/// no ordering relationship to the index's own synchronisation, so the
/// cheapest increment is the right one. Semantics: `requests` counts
/// every non-blank request line received (parsed or not); the per-verb
/// counters count *successfully parsed* requests (a batched form counts
/// once, on its header); `errors` counts `ERR` replies sent, whatever
/// their cause (parse failure, bad batch item, unsupported `HELLO`,
/// failed save, over-long line).
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    hello: AtomicU64,
    ingest: AtomicU64,
    batch_ingest: AtomicU64,
    query: AtomicU64,
    mquery: AtomicU64,
    stats: AtomicU64,
    save: AtomicU64,
    shutdown: AtomicU64,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        ServerMetrics {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            hello: AtomicU64::new(0),
            ingest: AtomicU64::new(0),
            batch_ingest: AtomicU64::new(0),
            query: AtomicU64::new(0),
            mquery: AtomicU64::new(0),
            stats: AtomicU64::new(0),
            save: AtomicU64::new(0),
            shutdown: AtomicU64::new(0),
        }
    }

    fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one received request line; `parsed` selects the per-verb
    /// counter (`None` for a line that failed to parse).
    fn record_request(&self, parsed: Option<&Request>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let verb = match parsed {
            None => return,
            Some(Request::Hello { .. }) => &self.hello,
            Some(Request::Ingest { .. }) => &self.ingest,
            Some(Request::BatchIngest { .. }) => &self.batch_ingest,
            Some(Request::Query { .. }) => &self.query,
            Some(Request::MultiQuery { .. }) => &self.mquery,
            Some(Request::Stats) => &self.stats,
            Some(Request::Save) => &self.save,
            Some(Request::Shutdown) => &self.shutdown,
        };
        verb.fetch_add(1, Ordering::Relaxed);
    }

    fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter, for rendering or testing.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs(),
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            hello: self.hello.load(Ordering::Relaxed),
            ingest: self.ingest.load(Ordering::Relaxed),
            batch_ingest: self.batch_ingest.load(Ordering::Relaxed),
            query: self.query.load(Ordering::Relaxed),
            mquery: self.mquery.load(Ordering::Relaxed),
            stats: self.stats.load(Ordering::Relaxed),
            save: self.save.load(Ordering::Relaxed),
            shutdown: self.shutdown.load(Ordering::Relaxed),
        }
    }
}

/// What handling one connection concluded.
enum Disposition {
    /// The client went away; accept the next connection.
    ClientDone,
    /// A `SHUTDOWN` request was honoured; stop the server.
    Shutdown,
}

/// A running (not yet serving) daemon: a bound listener plus the index it
/// will serve.
///
/// Binding is separated from serving so callers can learn the actual
/// address before the blocking accept loop starts — essential with an
/// ephemeral port (`:0`), which is how the integration tests and the
/// in-process example run.
///
/// # Examples
///
/// ```no_run
/// use kastio_index::{IndexOptions, PatternIndex, Server};
///
/// # fn main() -> std::io::Result<()> {
/// let index = PatternIndex::new(IndexOptions { shards: 4, ..IndexOptions::default() });
/// let server = Server::bind("127.0.0.1:0", index)?;
/// println!("listening on {}", server.local_addr()?);
/// let _index_back = server.serve()?; // blocks until SHUTDOWN
/// # Ok(())
/// # }
/// ```
pub struct Server {
    listener: TcpListener,
    index: Arc<PatternIndex>,
    stop: Arc<AtomicBool>,
    save_dir: Option<PathBuf>,
    metrics: Arc<ServerMetrics>,
}

/// A clonable handle that stops a running [`Server::serve`] loop from
/// another thread — the signal monitor uses one to turn `SIGTERM` into
/// the same clean shutdown a `SHUTDOWN` request performs (handlers
/// joined, corpus intact and saveable).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: raises the stop flag and nudges the accept loop
    /// awake with a throwaway connection so it observes the flag.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds a listener on `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port) around the given index.
    ///
    /// # Errors
    ///
    /// Propagates the [`TcpListener::bind`] failure.
    pub fn bind(addr: &str, index: PatternIndex) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            index: Arc::new(index),
            stop: Arc::new(AtomicBool::new(false)),
            save_dir: None,
            metrics: Arc::new(ServerMetrics::new()),
        })
    }

    /// Configures the snapshot directory: `SAVE` requests write there,
    /// and `SHUTDOWN` snapshots there *before* replying, so the
    /// requesting client sees the save outcome (`OK bye saved=…` or
    /// `ERR save failed: …`) instead of a silent post-reply failure.
    #[must_use]
    pub fn with_save_dir(mut self, dir: Option<PathBuf>) -> Server {
        self.save_dir = dir;
        self
    }

    /// The served index, shared. Lets a periodic
    /// [`crate::persist::Snapshotter`] or a signal monitor observe and
    /// snapshot the corpus while [`Server::serve`] blocks.
    pub fn index(&self) -> Arc<PatternIndex> {
        Arc::clone(&self.index)
    }

    /// The daemon's connection/request counters, shared. Lets a caller
    /// (tests, an embedding process) observe traffic while
    /// [`Server::serve`] blocks.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that stops the serve loop from another thread.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure (the handle needs the
    /// bound address for its wake-up nudge).
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle { stop: Arc::clone(&self.stop), addr: self.local_addr()? })
    }

    /// The address the listener actually bound.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections — each on its own thread — until a
    /// client sends `SHUTDOWN` (or a [`ShutdownHandle`] fires), then
    /// joins the handlers and returns the shared index (so the caller can
    /// persist it or inspect its [`crate::index::SnapshotStatus`]).
    ///
    /// Accept errors are treated as transient (EMFILE under fd pressure,
    /// ECONNABORTED, …): the loop backs off briefly and retries, so the
    /// in-memory corpus is never lost to a hiccup. Only a long unbroken
    /// run of failures abandons accepting — and even then the index is
    /// returned intact so the caller's save path still runs.
    ///
    /// # Errors
    ///
    /// Currently none after a successful bind; the `io::Result` is kept
    /// for callers that treat serving uniformly with binding.
    pub fn serve(self) -> io::Result<Arc<PatternIndex>> {
        let addr = self.listener.local_addr()?;
        let index = self.index;
        let stop = self.stop;
        let metrics = self.metrics;
        let save_dir = self.save_dir.map(Arc::new);
        // Registry of live client sockets, keyed by connection id. Each
        // handler removes its own entry on exit, so finished connections
        // release their file descriptors immediately; whatever is left at
        // shutdown is force-closed below to wake blocked readers.
        let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut consecutive_errors: u32 = 0;
        for (connection_id, stream) in (0_u64..).zip(self.listener.incoming()) {
            let stream = match stream {
                Ok(stream) => {
                    consecutive_errors = 0;
                    stream
                }
                Err(_) if stop.load(Ordering::SeqCst) => break,
                Err(_) => {
                    consecutive_errors += 1;
                    if consecutive_errors > 100 {
                        break; // listener looks permanently broken
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if stop.load(Ordering::SeqCst) {
                break; // woken by the shutdown nudge below
            }
            // Reap finished handlers so the handle list tracks live
            // connections, not total connections served.
            let (done, live): (Vec<_>, Vec<_>) =
                handlers.into_iter().partition(|handler| handler.is_finished());
            for handler in done {
                let _ = handler.join();
            }
            handlers = live;

            match stream.try_clone() {
                Ok(clone) => {
                    lock_registry(&connections).insert(connection_id, clone);
                }
                // Without a registered clone the socket could not be
                // force-closed at shutdown and its handler would block
                // serve() in join() forever — refuse the connection
                // instead (try_clone only fails under fd exhaustion).
                Err(_) => continue,
            }
            metrics.record_connection();
            let (index, stop, connections) =
                (Arc::clone(&index), Arc::clone(&stop), Arc::clone(&connections));
            let (save_dir, metrics) = (save_dir.clone(), Arc::clone(&metrics));
            handlers.push(std::thread::spawn(move || {
                let disposition = handle_connection(
                    stream,
                    &index,
                    save_dir.as_deref().map(PathBuf::as_path),
                    &metrics,
                );
                lock_registry(&connections).remove(&connection_id);
                if let Ok(Disposition::Shutdown) = disposition {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it observes the flag.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        // Close the remaining client sockets so handlers blocked in
        // read_line wake up and exit, making the joins below finite.
        for (_, connection) in lock_registry(&connections).drain() {
            let _ = connection.shutdown(std::net::Shutdown::Both);
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(index)
    }
}

fn lock_registry(
    connections: &Mutex<HashMap<u64, TcpStream>>,
) -> MutexGuard<'_, HashMap<u64, TcpStream>> {
    connections.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Upper bound on one request line. A client streaming data with no
/// newline would otherwise grow the line buffer without limit and OOM the
/// daemon; 16 MiB comfortably fits any realistic inline trace.
const MAX_REQUEST_BYTES: u64 = 16 << 20;

/// What reading one request (or batch item) line produced.
enum Line {
    /// A complete newline-terminated line is in the buffer.
    Full,
    /// The peer closed the connection.
    Eof,
    /// The line hit [`MAX_REQUEST_BYTES`] without a newline — the rest of
    /// the stream is unframed garbage.
    TooLong,
}

fn read_request_line<R: BufRead>(reader: &mut R, line: &mut String) -> io::Result<Line> {
    line.clear();
    if reader.by_ref().take(MAX_REQUEST_BYTES).read_line(line)? == 0 {
        return Ok(Line::Eof);
    }
    if line.len() as u64 >= MAX_REQUEST_BYTES && !line.ends_with('\n') {
        return Ok(Line::TooLong);
    }
    Ok(Line::Full)
}

/// Serves one client: one reply per request until EOF or `SHUTDOWN`. For
/// the batched forms (`BATCH INGEST`, `MQUERY`) the announced item lines
/// are consumed — even when an item is malformed — before the single
/// reply, so one bad item never desyncs the connection's framing.
/// `save_dir` is the snapshot target for `SAVE` (and the pre-reply save
/// of `SHUTDOWN`); without one, `SAVE` is answered with an `ERR`.
fn handle_connection(
    stream: TcpStream,
    index: &PatternIndex,
    save_dir: Option<&Path>,
    metrics: &ServerMetrics,
) -> io::Result<Disposition> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_request_line(&mut reader, &mut line)? {
            Line::Eof => return Ok(Disposition::ClientDone),
            Line::TooLong => {
                metrics.record_error();
                writer.write_all(b"ERR request line too long\n")?;
                writer.flush()?;
                return Ok(Disposition::ClientDone);
            }
            Line::Full => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = parse_request(&line);
        metrics.record_request(request.as_ref().ok());
        let reply = match request {
            Err(message) => format!("ERR {message}\n"),
            Ok(Request::Hello { version, client: _ }) => {
                // Version negotiation: the handshake succeeds only on an
                // exact match today (there is one version). Every other
                // verb keeps working without a HELLO, so old clients are
                // unaffected.
                if version == PROTOCOL_VERSION {
                    render_hello_reply()
                } else {
                    render_hello_unsupported(version)
                }
            }
            Ok(Request::Ingest { label, trace }) => match index.ingest_auto(label, trace) {
                Ok(id) => format!("OK id={} name=e{} entries={}\n", id.0, id.0, index.len()),
                Err(e) => format!("ERR {e}\n"),
            },
            Ok(Request::BatchIngest { count }) => {
                match read_items(&mut reader, &mut writer, count, metrics, parse_batch_ingest_item)?
                {
                    Items::Hangup => return Ok(Disposition::ClientDone),
                    Items::Bad(message) => message,
                    Items::Parsed(items) => batch_ingest_reply(index, count, items),
                }
            }
            Ok(Request::Query { k, trace }) => render_query_reply(&index.query(&trace, k)),
            Ok(Request::MultiQuery { k, count }) => {
                match read_items(&mut reader, &mut writer, count, metrics, |item| {
                    crate::protocol::decode_trace_inline(item.trim())
                })? {
                    Items::Hangup => return Ok(Disposition::ClientDone),
                    Items::Bad(message) => message,
                    Items::Parsed(traces) => render_mquery_reply(&index.query_batch(&traces, k)),
                }
            }
            Ok(Request::Stats) => {
                // One shard-size snapshot, with `entries` derived from it:
                // a concurrent ingest between two separate scans could
                // otherwise make the reply violate the documented
                // invariant that the shard counts sum to `entries`.
                let shard_sizes = index.shard_sizes();
                let entries = shard_sizes.iter().sum();
                render_stats_reply(
                    entries,
                    index.cached_pairs(),
                    &shard_sizes,
                    &index.stats(),
                    index.generation(),
                    &index.snapshot_status(),
                    &metrics.snapshot(),
                )
            }
            Ok(Request::Save) => match save_dir {
                None => "ERR no save directory (start the server with --save)\n".to_string(),
                Some(dir) => match save_index(index, dir) {
                    Ok(info) => {
                        format!(
                            "OK saved entries={} generation={}\n",
                            info.entries, info.generation
                        )
                    }
                    Err(e) => format!("ERR save failed: {e}\n"),
                },
            },
            Ok(Request::Shutdown) => {
                // Save *before* replying, so the client that requested
                // the shutdown learns whether the corpus actually made it
                // to disk. The server shuts down either way — the caller
                // of serve() re-checks the snapshot status and surfaces
                // the failure in its exit code.
                let reply = match save_dir {
                    None => "OK bye\n".to_string(),
                    Some(dir) => match save_index(index, dir) {
                        Ok(info) => format!(
                            "OK bye saved={} generation={}\n",
                            info.entries, info.generation
                        ),
                        Err(e) => format!("ERR save failed: {e} (shutting down anyway)\n"),
                    },
                };
                if reply.starts_with("ERR") {
                    metrics.record_error();
                }
                writer.write_all(reply.as_bytes())?;
                writer.flush()?;
                return Ok(Disposition::Shutdown);
            }
        };
        if reply.starts_with("ERR") {
            metrics.record_error();
        }
        writer.write_all(reply.as_bytes())?;
        writer.flush()?;
    }
}

/// Applies a fully parsed `BATCH INGEST` item list. Labels were validated
/// line by line during parsing, so ingestion cannot fail mid-batch today;
/// the error arm is kept so a future validation added to
/// [`PatternIndex::ingest_auto`] degrades to a reported `ERR` (with the
/// already-applied prefix kept, as the reply says) instead of a panic.
fn batch_ingest_reply(
    index: &PatternIndex,
    count: usize,
    items: Vec<(String, kastio_trace::Trace)>,
) -> String {
    for (i, (label, trace)) in items.into_iter().enumerate() {
        if let Err(e) = index.ingest_auto(label, trace) {
            return format!("ERR item {}/{count}: {e} (previous items were ingested)\n", i + 1);
        }
    }
    format!("OK batch={count} entries={}\n", index.len())
}

/// Outcome of reading a batch's item lines.
enum Items<T> {
    /// All items read and parsed.
    Parsed(Vec<T>),
    /// An item failed to parse; the `ERR` reply to send (every announced
    /// line was still consumed, so the connection stays framed).
    Bad(String),
    /// EOF or an unframed over-long line; hang up (an `ERR` was already
    /// written for the over-long case).
    Hangup,
}

/// Upper bound on the *cumulative* item bytes of one batched request.
/// The per-line cap alone would let a 4096-item batch buffer gigabytes of
/// parsed items before replying; this keeps a whole `BATCH INGEST` /
/// `MQUERY` within the same 16 MiB envelope as a single request line
/// (the remaining announced lines are still consumed — without being
/// stored — so the connection stays framed).
const MAX_BATCH_TOTAL_BYTES: u64 = MAX_REQUEST_BYTES;

fn read_items<R: BufRead, T>(
    reader: &mut R,
    writer: &mut impl Write,
    count: usize,
    metrics: &ServerMetrics,
    parse: impl Fn(&str) -> Result<T, String>,
) -> io::Result<Items<T>> {
    let mut items: Vec<T> = Vec::new();
    let mut first_error: Option<String> = None;
    let mut total_bytes: u64 = 0;
    let mut line = String::new();
    for i in 1..=count {
        match read_request_line(reader, &mut line)? {
            Line::Eof => return Ok(Items::Hangup),
            Line::TooLong => {
                metrics.record_error();
                writer.write_all(b"ERR request line too long\n")?;
                writer.flush()?;
                return Ok(Items::Hangup);
            }
            Line::Full => {}
        }
        if first_error.is_some() {
            continue; // keep consuming announced lines to stay framed
        }
        total_bytes += line.len() as u64;
        if total_bytes > MAX_BATCH_TOTAL_BYTES {
            items = Vec::new(); // release what was buffered
            first_error = Some(format!("ERR batch exceeds {MAX_BATCH_TOTAL_BYTES} total bytes\n"));
            continue;
        }
        match parse(&line) {
            Ok(item) => items.push(item),
            Err(message) => first_error = Some(format!("ERR item {i}/{count}: {message}\n")),
        }
    }
    Ok(match first_error {
        Some(message) => Items::Bad(message),
        None => Items::Parsed(items),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexOptions;

    fn start_with(opts: IndexOptions) -> (SocketAddr, std::thread::JoinHandle<Arc<PatternIndex>>) {
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(opts)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        (addr, handle)
    }

    fn start() -> (SocketAddr, std::thread::JoinHandle<Arc<PatternIndex>>) {
        start_with(IndexOptions::default())
    }

    fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
        stream.write_all(request.as_bytes()).unwrap();
        stream.flush().unwrap();
        // One outstanding request at a time, so a throwaway BufReader
        // cannot buffer past the reply it is framing.
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        crate::protocol::read_reply(&mut reader).expect("server replied")
    }

    #[test]
    fn ingest_query_stats_shutdown_lifecycle() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        let reply = roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        let reply = roundtrip(&mut stream, "INGEST r h0 read 8;h0 read 8\n");
        assert_eq!(reply, "OK id=1 name=e1 entries=2\n");

        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64;h0 write 64\n");
        assert!(reply.starts_with("OK matches=1 label=w\n"), "{reply}");
        assert!(reply.contains("MATCH 1 e0 w "), "{reply}");
        assert!(reply.ends_with("END\n"));

        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 2\n"), "{reply}");
        assert!(reply.contains("STAT shards 1\n"), "{reply}");
        assert!(reply.contains("STAT shard0_entries 2\n"), "{reply}");
        assert!(reply.contains("STAT queries 1\n"), "{reply}");

        let reply = roundtrip(&mut stream, "BOGUS\n");
        assert!(reply.starts_with("ERR unknown verb"), "{reply}");

        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 2, "server hands the corpus back on shutdown");
    }

    #[test]
    fn batch_ingest_and_mquery_lifecycle() {
        let (addr, handle) = start_with(IndexOptions { shards: 2, ..IndexOptions::default() });
        let mut stream = TcpStream::connect(addr).unwrap();

        let reply = roundtrip(
            &mut stream,
            "BATCH INGEST 3\nw h0 write 64;h0 write 64\nr h0 read 8;h0 read 8\nw h0 write 64\n",
        );
        assert_eq!(reply, "OK batch=3 entries=3\n");

        let reply = roundtrip(&mut stream, "MQUERY k=1 2\nh0 write 64;h0 write 64\nh0 read 8\n");
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK queries=2");
        assert_eq!(lines[1], "RESULT 1 matches=1 label=w");
        assert!(lines[2].starts_with("MATCH 1 e0 w "), "{reply}");
        assert_eq!(lines[3], "RESULT 2 matches=1 label=r");
        assert!(lines[4].starts_with("MATCH 1 e1 r "), "{reply}");
        assert_eq!(*lines.last().unwrap(), "END");

        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 3\n"), "{reply}");
        assert!(reply.contains("STAT shards 2\n"), "{reply}");
        assert!(reply.contains("STAT shard0_entries 2\n"), "{reply}");
        assert!(reply.contains("STAT shard1_entries 1\n"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 3);
        assert_eq!(index.shard_sizes(), vec![2, 1]);
    }

    #[test]
    fn bad_batch_item_keeps_the_connection_framed() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        // Item 2 is malformed; the server must consume item 3 anyway and
        // reject the whole batch without ingesting anything.
        let reply = roundtrip(
            &mut stream,
            "BATCH INGEST 3\nw h0 write 64\nbroken-no-trace\nw h0 write 32\n",
        );
        assert!(reply.starts_with("ERR item 2/3:"), "{reply}");

        // The connection is still usable and nothing was ingested.
        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 0\n"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn batch_cumulative_bytes_are_capped() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Three individually legal ~6 MiB items; the third crosses the
        // 16 MiB cumulative cap, so the batch is rejected as a whole and
        // nothing is ingested — but the connection stays framed.
        let item = format!("w {}", "h0 write 64;".repeat(500_000));
        let batch = format!("BATCH INGEST 3\n{item}\n{item}\n{item}\n");
        let reply = roundtrip(&mut stream, &batch);
        assert!(reply.starts_with("ERR batch exceeds"), "{reply}");
        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 0\n"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_queries_share_the_index_without_a_global_lock() {
        let (addr, handle) = start_with(IndexOptions { shards: 4, ..IndexOptions::default() });
        let mut seed = TcpStream::connect(addr).unwrap();
        for i in 0..8 {
            let reply =
                roundtrip(&mut seed, &format!("INGEST w{i} h0 write {};h0 write {0}\n", 64 << i));
            assert!(reply.starts_with("OK id="), "{reply}");
        }
        let readers: Vec<_> = (0..4)
            .map(|r| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for i in 0..5 {
                        let bytes = 64 << ((r + i) % 8);
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        stream
                            .write_all(
                                format!("QUERY k=2 h0 write {bytes};h0 write {bytes}\n").as_bytes(),
                            )
                            .unwrap();
                        let reply = crate::protocol::read_reply(&mut reader).unwrap();
                        assert!(reply.starts_with("OK matches=2"), "{reply}");
                        assert!(reply.ends_with("END\n"), "{reply}");
                    }
                })
            })
            .collect();
        for reader in readers {
            reader.join().unwrap();
        }
        assert_eq!(roundtrip(&mut seed, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.stats().queries, 20);
    }

    #[test]
    fn idle_connection_does_not_block_other_clients() {
        let (addr, handle) = start();
        // An idle client holds its connection open the whole time.
        let idle = TcpStream::connect(addr).unwrap();
        let mut active = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut active, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        let reply = roundtrip(&mut active, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        // Shutdown must complete even though `idle` never disconnected.
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 1);
        drop(idle);
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Stream past the cap without ever sending a newline.
        let chunk = vec![b'a'; 1 << 20];
        for _ in 0..17 {
            if stream.write_all(&chunk).is_err() {
                break; // server already hung up mid-write — acceptable
            }
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        let _ = reader.read_line(&mut reply);
        if !reply.is_empty() {
            assert!(reply.starts_with("ERR request line too long"), "{reply}");
        }
        // Either way the daemon is still alive and shuts down cleanly.
        let mut fresh = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut fresh, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn survives_client_disconnect() {
        let (addr, handle) = start();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"INGEST w h0 write 64\n").unwrap();
            // Drop without reading the reply: the server must accept the
            // next connection regardless.
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn save_without_save_dir_is_a_clean_error() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert!(reply.starts_with("ERR no save directory"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn save_verb_snapshots_and_shutdown_reports_the_save() {
        let dir = std::env::temp_dir().join(format!("kastio-server-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_save_dir(Some(dir.clone()));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();

        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert_eq!(reply, "OK saved entries=1 generation=1\n");
        assert!(dir.join("MANIFEST").exists());

        let stats = roundtrip(&mut stream, "STATS\n");
        assert!(stats.contains("STAT snapshots 1\n"), "{stats}");
        assert!(stats.contains("STAT snapshot_errors 0\n"), "{stats}");
        assert!(stats.contains("STAT last_snapshot_ok 1\n"), "{stats}");
        assert!(stats.contains("STAT last_snapshot_generation 1\n"), "{stats}");

        roundtrip(&mut stream, "INGEST r h0 read 8\n");
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye saved=2 generation=2\n", "shutdown reports its save");
        let index = handle.join().unwrap();
        assert_eq!(index.snapshot_status().snapshots, 2);

        let restored =
            crate::persist::load_index(&dir, IndexOptions::default()).expect("snapshot loads");
        assert_eq!(restored.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_shutdown_save_is_reported_to_the_requesting_client() {
        // /dev/null is a file, so creating a snapshot directory under it
        // fails with a real IO error even when running as root.
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_save_dir(Some(std::path::PathBuf::from("/dev/null/corpus")));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64\n");
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert!(reply.starts_with("ERR save failed:"), "{reply}");
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert!(reply.starts_with("ERR save failed:"), "{reply}");
        assert!(reply.contains("shutting down anyway"), "{reply}");
        let index = handle.join().unwrap();
        let status = index.snapshot_status();
        assert_eq!(status.errors, 2);
        assert_eq!(status.last_ok, Some(false));
        assert_eq!(index.len(), 1, "the corpus itself is intact in memory");
    }

    #[test]
    fn shutdown_handle_stops_the_server_without_a_client() {
        let (addr, handle, shutdown) = {
            let server =
                Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default())).unwrap();
            let addr = server.local_addr().unwrap();
            let shutdown = server.shutdown_handle().unwrap();
            let handle = std::thread::spawn(move || server.serve().expect("server runs"));
            (addr, handle, shutdown)
        };
        // An idle client is connected; the handle must still stop serve().
        let idle = TcpStream::connect(addr).unwrap();
        shutdown.shutdown();
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 0);
        drop(idle);
    }

    #[test]
    fn hello_negotiates_and_other_verbs_work_without_it() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        // A client that never sends HELLO keeps working (back-compat)…
        let reply = roundtrip(&mut stream, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");

        // …and the handshake itself round-trips, with and without the
        // optional client token.
        let reply = roundtrip(&mut stream, "HELLO 1\n");
        assert_eq!(reply, crate::protocol::render_hello_reply());
        let reply = roundtrip(&mut stream, "HELLO 1 test-suite\n");
        assert!(reply.starts_with("OK kastio proto=1 "), "{reply}");

        // Unknown versions get the structured rejection, and the
        // connection stays usable.
        let reply = roundtrip(&mut stream, "HELLO 7\n");
        assert_eq!(reply, "ERR unsupported proto 7 (server speaks 1)\n");
        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        assert!(reply.starts_with("OK matches=1"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn stats_reports_connection_and_verb_counters() {
        let server =
            Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default())).unwrap();
        let addr = server.local_addr().unwrap();
        let metrics = server.metrics();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));

        let mut first = TcpStream::connect(addr).unwrap();
        roundtrip(&mut first, "HELLO 1 counter-test\n");
        roundtrip(&mut first, "INGEST w h0 write 64\n");
        roundtrip(&mut first, "BOGUS\n"); // parse error → requests+1, errors+1
        drop(first);

        let mut second = TcpStream::connect(addr).unwrap();
        roundtrip(&mut second, "QUERY k=1 h0 write 64\n");
        let stats = roundtrip(&mut second, "STATS\n");
        assert!(stats.contains("STAT connections 2\n"), "{stats}");
        assert!(stats.contains("STAT requests_total 5\n"), "{stats}");
        assert!(stats.contains("STAT request_errors 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_hello 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_ingest 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_query 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_stats 1\n"), "{stats}");
        assert!(stats.contains("STAT uptime_secs "), "{stats}");

        assert_eq!(roundtrip(&mut second, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.connections, 2);
        assert_eq!(snapshot.shutdown, 1);
        assert_eq!(snapshot.requests, 6);
        assert_eq!(snapshot.errors, 1);
    }

    #[test]
    fn batch_header_eof_before_items_closes_cleanly() {
        let (addr, handle) = start();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Announce 2 items but hang up after the header.
            stream.write_all(b"BATCH INGEST 2\n").unwrap();
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 0, "a truncated batch ingests nothing");
    }
}
