//! The `serve` daemon: a [`TcpListener`] loop around a [`PatternIndex`].
//!
//! Deliberately dependency-free (no async runtime — the build environment
//! is offline, and blocking I/O is entirely adequate for a line-oriented
//! request/reply protocol whose unit of work is a kernel batch). Each
//! connection gets its own OS thread so an idle client never blocks the
//! others.
//!
//! There is **no server-side lock**: the index is internally sharded and
//! synchronised (see [`crate::index`]), so handler threads share it behind
//! a plain [`Arc`]. `QUERY`/`MQUERY` take shard *read* locks and run
//! concurrently with each other; `INGEST`/`BATCH INGEST` write-lock only
//! the shard that owns each new entry, so writers never stall queries on
//! the other shards. Within a query the index additionally fans the
//! kernel batch out across scoped threads, which is where the actual CPU
//! time goes.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use kastio_obs::{Histogram, SlowLog, StripedHistogram};

use kastio_trace::wal::WalRecord;

use crate::fault::{crash_point, CRASH_AFTER_ACK};
use crate::index::{PatternIndex, QueryTimings};
use crate::persist::save_index_wal;
use crate::protocol::{
    parse_batch_ingest_item, parse_request, render_hello_reply, render_hello_unsupported,
    render_metrics_reply, render_mquery_reply, render_query_reply, render_slowlog_get,
    render_slowlog_len, render_slowlog_reset, render_stats_reply, render_trace_line,
    MetricsSnapshot, Request, SlowlogCmd, PROTOCOL_VERSION,
};
use crate::wal::WalManager;

/// Per-verb histogram slots, in [`MetricsSnapshot::verb_counts`] order.
const VERB_NAMES: [&str; 10] = [
    "hello",
    "ingest",
    "batch_ingest",
    "query",
    "mquery",
    "stats",
    "save",
    "shutdown",
    "metrics",
    "slowlog",
];

/// Pipeline stage histogram slots, in request order. `parse` covers
/// request-line parsing (plus item-line reads for the batched forms);
/// `prefilter`/`cache`/`kernel` come from the index's [`QueryTimings`];
/// `reply` is the reply write + flush.
const STAGE_NAMES: [&str; 5] = ["parse", "prefilter", "cache", "kernel", "reply"];

const STAGE_PARSE: usize = 0;
const STAGE_PREFILTER: usize = 1;
const STAGE_CACHE: usize = 2;
const STAGE_KERNEL: usize = 3;
const STAGE_REPLY: usize = 4;

/// The histogram slot a parsed request records into.
fn verb_slot(request: &Request) -> usize {
    match request {
        Request::Hello { .. } => 0,
        Request::Ingest { .. } => 1,
        Request::BatchIngest { .. } => 2,
        Request::Query { .. } => 3,
        Request::MultiQuery { .. } => 4,
        Request::Stats => 5,
        Request::Save => 6,
        Request::Shutdown => 7,
        Request::Metrics => 8,
        Request::Slowlog(_) => 9,
    }
}

/// The slow-log presentation of a request: its wire verb (space-free, so
/// `SLOW` lines stay token-aligned) and a compact argument summary.
fn request_summary(request: &Request) -> (&'static str, String) {
    match request {
        Request::Hello { version, .. } => ("HELLO", format!("proto={version}")),
        Request::Ingest { label, trace } => {
            ("INGEST", format!("label={label},ops={}", trace.len()))
        }
        Request::BatchIngest { count } => ("BATCH_INGEST", format!("count={count}")),
        Request::Query { k, trace, .. } => ("QUERY", format!("k={k},ops={}", trace.len())),
        Request::MultiQuery { k, count, .. } => ("MQUERY", format!("k={k},count={count}")),
        Request::Stats => ("STATS", String::new()),
        Request::Metrics => ("METRICS", String::new()),
        Request::Slowlog(SlowlogCmd::Get) => ("SLOWLOG", "GET".to_string()),
        Request::Slowlog(SlowlogCmd::Reset) => ("SLOWLOG", "RESET".to_string()),
        Request::Slowlog(SlowlogCmd::Len) => ("SLOWLOG", "LEN".to_string()),
        Request::Save => ("SAVE", String::new()),
        Request::Shutdown => ("SHUTDOWN", String::new()),
    }
}

/// Live connection/request counters of a running daemon, shared by every
/// handler thread and reported in the `STATS` reply.
///
/// Counters are plain relaxed atomics: they are observability data with
/// no ordering relationship to the index's own synchronisation, so the
/// cheapest increment is the right one. Semantics: `requests` counts
/// every non-blank request line received (parsed or not); the per-verb
/// counters count *successfully parsed* requests (a batched form counts
/// once, on its header); `errors` counts `ERR` replies sent, whatever
/// their cause (parse failure, bad batch item, unsupported `HELLO`,
/// failed save, over-long line).
///
/// Latency is recorded into [`StripedHistogram`]s — one per verb for
/// total request latency, one per pipeline stage — so concurrent handler
/// threads rarely contend; `METRICS` and `STATS` merge the stripes into
/// point-in-time [`Histogram`] snapshots.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    verbs: [AtomicU64; VERB_NAMES.len()],
    /// Per-verb request latency (read → reply flushed), nanoseconds.
    verb_latency: [StripedHistogram; VERB_NAMES.len()],
    /// Per-stage latency across all requests, nanoseconds.
    stage_latency: [StripedHistogram; STAGE_NAMES.len()],
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        ServerMetrics {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            verbs: std::array::from_fn(|_| AtomicU64::new(0)),
            verb_latency: std::array::from_fn(|_| StripedHistogram::new()),
            stage_latency: std::array::from_fn(|_| StripedHistogram::new()),
        }
    }

    fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one received request line; `parsed` selects the per-verb
    /// counter (`None` for a line that failed to parse).
    fn record_request(&self, parsed: Option<&Request>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(request) = parsed {
            self.verbs[verb_slot(request)].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed request's total latency into its verb's
    /// histogram.
    fn record_latency(&self, slot: usize, total_ns: u64) {
        self.verb_latency[slot].record(total_ns);
    }

    /// Records one pipeline stage span.
    fn record_stage(&self, stage: usize, ns: u64) {
        self.stage_latency[stage].record(ns);
    }

    /// Microseconds since the listener was bound — the slow log's
    /// timestamp base.
    fn uptime_micros(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Merged per-verb latency histograms for verbs with at least one
    /// sample, in documentation order.
    pub fn verb_latency_snapshots(&self) -> Vec<(&'static str, Histogram)> {
        VERB_NAMES
            .iter()
            .zip(&self.verb_latency)
            .filter(|(_, striped)| striped.count() > 0)
            .map(|(name, striped)| (*name, striped.snapshot()))
            .collect()
    }

    /// Merged per-stage latency histograms for stages with at least one
    /// sample, in pipeline order.
    pub fn stage_latency_snapshots(&self) -> Vec<(&'static str, Histogram)> {
        STAGE_NAMES
            .iter()
            .zip(&self.stage_latency)
            .filter(|(_, striped)| striped.count() > 0)
            .map(|(name, striped)| (*name, striped.snapshot()))
            .collect()
    }

    /// Per-verb `[p50, p95, p99]` total-latency quantiles in
    /// microseconds, for verbs with at least one sample — the `STATS`
    /// latency block.
    pub fn latency_quantiles(&self) -> Vec<(&'static str, [u64; 3])> {
        self.verb_latency_snapshots()
            .into_iter()
            .map(|(name, histogram)| {
                let us = |p: f64| histogram.percentile(p) / 1_000;
                (name, [us(50.0), us(95.0), us(99.0)])
            })
            .collect()
    }

    /// A point-in-time copy of every counter, for rendering or testing.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let verb = |slot: usize| self.verbs[slot].load(Ordering::Relaxed);
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs(),
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            hello: verb(0),
            ingest: verb(1),
            batch_ingest: verb(2),
            query: verb(3),
            mquery: verb(4),
            stats: verb(5),
            save: verb(6),
            shutdown: verb(7),
            metrics: verb(8),
            slowlog: verb(9),
        }
    }
}

/// What handling one connection concluded.
enum Disposition {
    /// The client went away; accept the next connection.
    ClientDone,
    /// A `SHUTDOWN` request was honoured; stop the server.
    Shutdown,
}

/// A running (not yet serving) daemon: a bound listener plus the index it
/// will serve.
///
/// Binding is separated from serving so callers can learn the actual
/// address before the blocking accept loop starts — essential with an
/// ephemeral port (`:0`), which is how the integration tests and the
/// in-process example run.
///
/// # Examples
///
/// ```no_run
/// use kastio_index::{IndexOptions, PatternIndex, Server};
///
/// # fn main() -> std::io::Result<()> {
/// let index = PatternIndex::new(IndexOptions { shards: 4, ..IndexOptions::default() });
/// let server = Server::bind("127.0.0.1:0", index)?;
/// println!("listening on {}", server.local_addr()?);
/// let _index_back = server.serve()?; // blocks until SHUTDOWN
/// # Ok(())
/// # }
/// ```
pub struct Server {
    listener: TcpListener,
    index: Arc<PatternIndex>,
    stop: Arc<AtomicBool>,
    save_dir: Option<PathBuf>,
    wal: Option<Arc<WalManager>>,
    metrics: Arc<ServerMetrics>,
    slow_log: Arc<SlowLog>,
}

/// A clonable handle that stops a running [`Server::serve`] loop from
/// another thread — the signal monitor uses one to turn `SIGTERM` into
/// the same clean shutdown a `SHUTDOWN` request performs (handlers
/// joined, corpus intact and saveable).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: raises the stop flag and nudges the accept loop
    /// awake with a throwaway connection so it observes the flag.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds a listener on `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port) around the given index.
    ///
    /// # Errors
    ///
    /// Propagates the [`TcpListener::bind`] failure.
    pub fn bind(addr: &str, index: PatternIndex) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            index: Arc::new(index),
            stop: Arc::new(AtomicBool::new(false)),
            save_dir: None,
            wal: None,
            metrics: Arc::new(ServerMetrics::new()),
            slow_log: Arc::new(SlowLog::disabled()),
        })
    }

    /// Configures the slow-query log threshold: requests whose total
    /// latency reaches `threshold_micros` are recorded (newest
    /// [`SlowLog::DEFAULT_CAPACITY`] kept) and exposed through the
    /// `SLOWLOG` verb. `None` (the default) disables recording — the
    /// verb still answers, with an empty log. Threshold 0 logs every
    /// request, mirroring Redis's `slowlog-log-slower-than 0` test hook.
    #[must_use]
    pub fn with_slow_log(mut self, threshold_micros: Option<u64>) -> Server {
        self.slow_log = Arc::new(SlowLog::new(SlowLog::DEFAULT_CAPACITY, threshold_micros));
        self
    }

    /// Configures the snapshot directory: `SAVE` requests write there,
    /// and `SHUTDOWN` snapshots there *before* replying, so the
    /// requesting client sees the save outcome (`OK bye saved=…` or
    /// `ERR save failed: …`) instead of a silent post-reply failure.
    #[must_use]
    pub fn with_save_dir(mut self, dir: Option<PathBuf>) -> Server {
        self.save_dir = dir;
        self
    }

    /// Attaches a write-ahead log: every `INGEST` / `BATCH INGEST` is
    /// appended and group-commit-fsync'd *before* its `OK` reply is
    /// written (ack-after-fsync), `SAVE` compacts the log against the
    /// snapshot generation (and says so: `… wal=truncated`), and the
    /// `STATS` / `METRICS` wal counters go live. `None` (the default)
    /// keeps the snapshot-only durability story and every reply byte
    /// unchanged.
    #[must_use]
    pub fn with_wal(mut self, wal: Option<Arc<WalManager>>) -> Server {
        self.wal = wal;
        self
    }

    /// The served index, shared. Lets a periodic
    /// [`crate::persist::Snapshotter`] or a signal monitor observe and
    /// snapshot the corpus while [`Server::serve`] blocks.
    pub fn index(&self) -> Arc<PatternIndex> {
        Arc::clone(&self.index)
    }

    /// The daemon's connection/request counters, shared. Lets a caller
    /// (tests, an embedding process) observe traffic while
    /// [`Server::serve`] blocks.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that stops the serve loop from another thread.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure (the handle needs the
    /// bound address for its wake-up nudge).
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle { stop: Arc::clone(&self.stop), addr: self.local_addr()? })
    }

    /// The address the listener actually bound.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections — each on its own thread — until a
    /// client sends `SHUTDOWN` (or a [`ShutdownHandle`] fires), then
    /// joins the handlers and returns the shared index (so the caller can
    /// persist it or inspect its [`crate::index::SnapshotStatus`]).
    ///
    /// Accept errors are treated as transient (EMFILE under fd pressure,
    /// ECONNABORTED, …): the loop backs off briefly and retries, so the
    /// in-memory corpus is never lost to a hiccup. Only a long unbroken
    /// run of failures abandons accepting — and even then the index is
    /// returned intact so the caller's save path still runs.
    ///
    /// # Errors
    ///
    /// Currently none after a successful bind; the `io::Result` is kept
    /// for callers that treat serving uniformly with binding.
    pub fn serve(self) -> io::Result<Arc<PatternIndex>> {
        let addr = self.listener.local_addr()?;
        let index = self.index;
        let stop = self.stop;
        let metrics = self.metrics;
        let slow_log = self.slow_log;
        let save_dir = self.save_dir.map(Arc::new);
        let wal = self.wal;
        // Registry of live client sockets, keyed by connection id. Each
        // handler removes its own entry on exit, so finished connections
        // release their file descriptors immediately; whatever is left at
        // shutdown is force-closed below to wake blocked readers.
        let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut consecutive_errors: u32 = 0;
        for (connection_id, stream) in (0_u64..).zip(self.listener.incoming()) {
            let stream = match stream {
                Ok(stream) => {
                    consecutive_errors = 0;
                    stream
                }
                Err(_) if stop.load(Ordering::SeqCst) => break,
                Err(_) => {
                    consecutive_errors += 1;
                    if consecutive_errors > 100 {
                        break; // listener looks permanently broken
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if stop.load(Ordering::SeqCst) {
                break; // woken by the shutdown nudge below
            }
            // Reap finished handlers so the handle list tracks live
            // connections, not total connections served.
            let (done, live): (Vec<_>, Vec<_>) =
                handlers.into_iter().partition(|handler| handler.is_finished());
            for handler in done {
                let _ = handler.join();
            }
            handlers = live;

            match stream.try_clone() {
                Ok(clone) => {
                    lock_registry(&connections).insert(connection_id, clone);
                }
                // Without a registered clone the socket could not be
                // force-closed at shutdown and its handler would block
                // serve() in join() forever — refuse the connection
                // instead (try_clone only fails under fd exhaustion).
                Err(_) => continue,
            }
            metrics.record_connection();
            let (index, stop, connections) =
                (Arc::clone(&index), Arc::clone(&stop), Arc::clone(&connections));
            let (save_dir, metrics) = (save_dir.clone(), Arc::clone(&metrics));
            let (slow_log, wal) = (Arc::clone(&slow_log), wal.clone());
            handlers.push(std::thread::spawn(move || {
                let disposition = handle_connection(
                    stream,
                    &index,
                    save_dir.as_deref().map(PathBuf::as_path),
                    wal.as_deref(),
                    &metrics,
                    &slow_log,
                );
                lock_registry(&connections).remove(&connection_id);
                if let Ok(Disposition::Shutdown) = disposition {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it observes the flag.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        // Close the remaining client sockets so handlers blocked in
        // read_line wake up and exit, making the joins below finite.
        for (_, connection) in lock_registry(&connections).drain() {
            let _ = connection.shutdown(std::net::Shutdown::Both);
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(index)
    }
}

fn lock_registry(
    connections: &Mutex<HashMap<u64, TcpStream>>,
) -> MutexGuard<'_, HashMap<u64, TcpStream>> {
    connections.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Upper bound on one request line. A client streaming data with no
/// newline would otherwise grow the line buffer without limit and OOM the
/// daemon; 16 MiB comfortably fits any realistic inline trace.
const MAX_REQUEST_BYTES: u64 = 16 << 20;

/// What reading one request (or batch item) line produced.
enum Line {
    /// A complete newline-terminated line is in the buffer.
    Full,
    /// The peer closed the connection.
    Eof,
    /// The line hit [`MAX_REQUEST_BYTES`] without a newline — the rest of
    /// the stream is unframed garbage.
    TooLong,
}

fn read_request_line<R: BufRead>(reader: &mut R, line: &mut String) -> io::Result<Line> {
    line.clear();
    if reader.by_ref().take(MAX_REQUEST_BYTES).read_line(line)? == 0 {
        return Ok(Line::Eof);
    }
    if line.len() as u64 >= MAX_REQUEST_BYTES && !line.ends_with('\n') {
        return Ok(Line::TooLong);
    }
    Ok(Line::Full)
}

/// Nanoseconds elapsed since `start`, saturating.
fn span_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Serves one client: one reply per request until EOF or `SHUTDOWN`. For
/// the batched forms (`BATCH INGEST`, `MQUERY`) the announced item lines
/// are consumed — even when an item is malformed — before the single
/// reply, so one bad item never desyncs the connection's framing.
/// `save_dir` is the snapshot target for `SAVE` (and the pre-reply save
/// of `SHUTDOWN`); without one, `SAVE` is answered with an `ERR`. With a
/// `wal`, ingest replies are written only after the covering fsync — an
/// `OK` a client reads is a durability promise, proven by
/// `tests/wal_recovery.rs` against `kill -9` at injected crash points.
///
/// Every request is timed from the end of its request-line read to the
/// reply flush; the total lands in the verb's latency histogram, the
/// stage spans in the per-stage histograms, and — when the slow-log
/// threshold is crossed — a summary in the [`SlowLog`].
fn handle_connection(
    stream: TcpStream,
    index: &PatternIndex,
    save_dir: Option<&Path>,
    wal: Option<&WalManager>,
    metrics: &ServerMetrics,
    slow_log: &SlowLog,
) -> io::Result<Disposition> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_request_line(&mut reader, &mut line)? {
            Line::Eof => return Ok(Disposition::ClientDone),
            Line::TooLong => {
                metrics.record_error();
                writer.write_all(b"ERR request line too long\n")?;
                writer.flush()?;
                return Ok(Disposition::ClientDone);
            }
            Line::Full => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let request = parse_request(&line);
        metrics.record_request(request.as_ref().ok());
        let slot = request.as_ref().ok().map(verb_slot);
        // The argument summary allocates, so it is only built when the
        // slow log could actually keep it.
        let summary =
            slow_log.threshold_micros().and_then(|_| request.as_ref().ok().map(request_summary));
        let mut parse_ns = span_ns(started);
        let mut query_timings = QueryTimings::default();
        let mut ran_query = false;
        let mut timed = false;
        let mut shutting_down = false;
        let mut reply = match request {
            Err(message) => format!("ERR {message}\n"),
            Ok(Request::Hello { version, client: _ }) => {
                // Version negotiation: the handshake succeeds only on an
                // exact match today (there is one version). Every other
                // verb keeps working without a HELLO, so old clients are
                // unaffected.
                if version == PROTOCOL_VERSION {
                    render_hello_reply()
                } else {
                    render_hello_unsupported(version)
                }
            }
            Ok(Request::Ingest { label, trace }) => {
                // `ingest_auto` consumes the label and trace, but the WAL
                // record needs them too — and only exists on the success
                // path, so the clone is taken up front.
                let journal = wal.map(|wal| (wal, label.clone(), trace.clone()));
                match index.ingest_auto(label, trace) {
                    Ok(id) => {
                        let durable = journal.map_or(Ok(()), |(wal, label, trace)| {
                            wal_commit(
                                wal,
                                vec![WalRecord {
                                    id: id.0,
                                    name: format!("e{}", id.0),
                                    label,
                                    trace,
                                }],
                            )
                        });
                        match durable {
                            Ok(()) => {
                                format!("OK id={} name=e{} entries={}\n", id.0, id.0, index.len())
                            }
                            Err(e) => format!("ERR wal: {e}\n"),
                        }
                    }
                    Err(e) => format!("ERR {e}\n"),
                }
            }
            Ok(Request::BatchIngest { count }) => {
                let items_started = Instant::now();
                let items =
                    read_items(&mut reader, &mut writer, count, metrics, parse_batch_ingest_item)?;
                parse_ns += span_ns(items_started);
                match items {
                    Items::Hangup => return Ok(Disposition::ClientDone),
                    Items::Bad(message) => message,
                    Items::Parsed(items) => batch_ingest_reply(index, count, items, wal),
                }
            }
            Ok(Request::Query { k, trace, timed: t }) => {
                let result = index.query(&trace, k);
                query_timings = result.timings;
                ran_query = true;
                timed = t;
                render_query_reply(&result)
            }
            Ok(Request::MultiQuery { k, count, timed: t }) => {
                let items_started = Instant::now();
                let items = read_items(&mut reader, &mut writer, count, metrics, |item| {
                    crate::protocol::decode_trace_inline(item.trim())
                })?;
                parse_ns += span_ns(items_started);
                match items {
                    Items::Hangup => return Ok(Disposition::ClientDone),
                    Items::Bad(message) => message,
                    Items::Parsed(traces) => {
                        let results = index.query_batch(&traces, k);
                        for result in &results {
                            query_timings.merge(&result.timings);
                        }
                        ran_query = true;
                        timed = t;
                        render_mquery_reply(&results)
                    }
                }
            }
            Ok(Request::Stats) => {
                // One shard-size snapshot, with `entries` derived from it:
                // a concurrent ingest between two separate scans could
                // otherwise make the reply violate the documented
                // invariant that the shard counts sum to `entries`.
                let shard_sizes = index.shard_sizes();
                let entries = shard_sizes.iter().sum();
                render_stats_reply(
                    entries,
                    index.cached_pairs(),
                    &shard_sizes,
                    &index.stats(),
                    index.generation(),
                    &snapshot_status_with_wal(index, wal),
                    &metrics.snapshot(),
                    &metrics.latency_quantiles(),
                )
            }
            Ok(Request::Metrics) => render_metrics_reply(
                &metrics.snapshot(),
                &metrics.verb_latency_snapshots(),
                &metrics.stage_latency_snapshots(),
                &snapshot_status_with_wal(index, wal),
                slow_log.len(),
            ),
            Ok(Request::Slowlog(SlowlogCmd::Get)) => render_slowlog_get(&slow_log.entries()),
            Ok(Request::Slowlog(SlowlogCmd::Len)) => render_slowlog_len(slow_log.len()),
            Ok(Request::Slowlog(SlowlogCmd::Reset)) => {
                slow_log.reset();
                render_slowlog_reset()
            }
            Ok(Request::Save) => match save_dir {
                None => "ERR no save directory (start the server with --save)\n".to_string(),
                Some(dir) => match save_index_wal(index, dir, wal) {
                    Ok(info) => {
                        // Under --wal a snapshot is a compaction point:
                        // the reply says the log was trimmed too, so a
                        // client (and the conformance suite) can tell the
                        // two durability modes apart on the wire.
                        let wal_note = if wal.is_some() { " wal=truncated" } else { "" };
                        format!(
                            "OK saved entries={} generation={}{wal_note}\n",
                            info.entries, info.generation
                        )
                    }
                    Err(e) => format!("ERR save failed: {e}\n"),
                },
            },
            Ok(Request::Shutdown) => {
                // Save *before* replying, so the client that requested
                // the shutdown learns whether the corpus actually made it
                // to disk. The server shuts down either way — the caller
                // of serve() re-checks the snapshot status and surfaces
                // the failure in its exit code.
                shutting_down = true;
                match save_dir {
                    None => "OK bye\n".to_string(),
                    Some(dir) => match save_index_wal(index, dir, wal) {
                        Ok(info) => format!(
                            "OK bye saved={} generation={}\n",
                            info.entries, info.generation
                        ),
                        Err(e) => format!("ERR save failed: {e} (shutting down anyway)\n"),
                    },
                }
            }
        };
        if reply.starts_with("ERR") {
            metrics.record_error();
        }
        if timed && reply.ends_with("END\n") {
            // The reply-write span cannot be known before the reply is
            // written, so the inline TRACE total covers read → render;
            // `reply` still shows up in the stage histograms and the
            // slow log. Per-field flooring to µs keeps the rendered
            // stage sum at or under the rendered total.
            let trace_line = render_trace_line(
                span_ns(started),
                &[
                    ("parse", parse_ns),
                    ("prefilter", query_timings.prefilter_ns),
                    ("cache", query_timings.cache_ns),
                    ("kernel", query_timings.kernel_ns),
                ],
            );
            reply.insert_str(reply.len() - "END\n".len(), &trace_line);
        }
        let write_started = Instant::now();
        writer.write_all(reply.as_bytes())?;
        writer.flush()?;
        if reply.starts_with("OK")
            && matches!(slot.map(|s| VERB_NAMES[s]), Some("ingest" | "batch_ingest"))
        {
            // Fault injection: with ack-after-fsync ordering, a crash
            // *after* the ack has left the socket must already find the
            // record durable — tests/wal_recovery.rs aborts here and
            // asserts exactly that.
            crash_point(CRASH_AFTER_ACK);
        }
        let reply_ns = span_ns(write_started);
        let total_ns = span_ns(started);
        metrics.record_stage(STAGE_PARSE, parse_ns);
        if ran_query {
            metrics.record_stage(STAGE_PREFILTER, query_timings.prefilter_ns);
            metrics.record_stage(STAGE_CACHE, query_timings.cache_ns);
            metrics.record_stage(STAGE_KERNEL, query_timings.kernel_ns);
        }
        metrics.record_stage(STAGE_REPLY, reply_ns);
        if let Some(slot) = slot {
            metrics.record_latency(slot, total_ns);
        }
        if let Some((verb, args)) = summary {
            let mut stages = vec![("parse", parse_ns / 1_000)];
            if ran_query {
                stages.push(("prefilter", query_timings.prefilter_ns / 1_000));
                stages.push(("cache", query_timings.cache_ns / 1_000));
                stages.push(("kernel", query_timings.kernel_ns / 1_000));
            }
            stages.push(("reply", reply_ns / 1_000));
            slow_log.record(metrics.uptime_micros(), verb, args, total_ns / 1_000, stages);
        }
        if shutting_down {
            return Ok(Disposition::Shutdown);
        }
    }
}

/// Applies a fully parsed `BATCH INGEST` item list. Labels were validated
/// line by line during parsing, so ingestion cannot fail mid-batch today;
/// the error arm is kept so a future validation added to
/// [`PatternIndex::ingest_auto`] degrades to a reported `ERR` (with the
/// already-applied prefix kept, as the reply says) instead of a panic.
fn batch_ingest_reply(
    index: &PatternIndex,
    count: usize,
    items: Vec<(String, kastio_trace::Trace)>,
    wal: Option<&WalManager>,
) -> String {
    let mut records = Vec::new();
    for (i, (label, trace)) in items.into_iter().enumerate() {
        let journal = wal.map(|_| (label.clone(), trace.clone()));
        match index.ingest_auto(label, trace) {
            Ok(id) => {
                if let Some((label, trace)) = journal {
                    records.push(WalRecord { id: id.0, name: format!("e{}", id.0), label, trace });
                }
            }
            Err(e) => {
                // The applied prefix is in memory either way; with a WAL
                // it must also be logged, or a *later* acked ingest would
                // sit past an id gap and be dropped at replay. The ERR
                // still means this batch as a whole was not acked.
                if let Some(wal) = wal {
                    let _ = wal_commit(wal, records);
                }
                return format!("ERR item {}/{count}: {e} (previous items were ingested)\n", i + 1);
            }
        }
    }
    if let Some(wal) = wal {
        if let Err(e) = wal_commit(wal, records) {
            return format!("ERR wal: {e}\n");
        }
    }
    format!("OK batch={count} entries={}\n", index.len())
}

/// Appends `records` to the log and blocks until one group-commit fsync
/// covers them all — the gate an ingest reply waits behind.
fn wal_commit(wal: &WalManager, records: Vec<WalRecord>) -> io::Result<()> {
    let mut last = 0;
    for record in &records {
        last = wal.append(record)?;
    }
    wal.wait_durable(last)
}

/// The index's snapshot status with the live WAL counters overlaid (when
/// a WAL is attached) — the form `STATS` / `METRICS` report.
fn snapshot_status_with_wal(
    index: &PatternIndex,
    wal: Option<&WalManager>,
) -> crate::index::SnapshotStatus {
    let mut status = index.snapshot_status();
    if let Some(wal) = wal {
        wal.overlay(&mut status);
    }
    status
}

/// Outcome of reading a batch's item lines.
enum Items<T> {
    /// All items read and parsed.
    Parsed(Vec<T>),
    /// An item failed to parse; the `ERR` reply to send (every announced
    /// line was still consumed, so the connection stays framed).
    Bad(String),
    /// EOF or an unframed over-long line; hang up (an `ERR` was already
    /// written for the over-long case).
    Hangup,
}

/// Upper bound on the *cumulative* item bytes of one batched request.
/// The per-line cap alone would let a 4096-item batch buffer gigabytes of
/// parsed items before replying; this keeps a whole `BATCH INGEST` /
/// `MQUERY` within the same 16 MiB envelope as a single request line
/// (the remaining announced lines are still consumed — without being
/// stored — so the connection stays framed).
const MAX_BATCH_TOTAL_BYTES: u64 = MAX_REQUEST_BYTES;

fn read_items<R: BufRead, T>(
    reader: &mut R,
    writer: &mut impl Write,
    count: usize,
    metrics: &ServerMetrics,
    parse: impl Fn(&str) -> Result<T, String>,
) -> io::Result<Items<T>> {
    let mut items: Vec<T> = Vec::new();
    let mut first_error: Option<String> = None;
    let mut total_bytes: u64 = 0;
    let mut line = String::new();
    for i in 1..=count {
        match read_request_line(reader, &mut line)? {
            Line::Eof => return Ok(Items::Hangup),
            Line::TooLong => {
                metrics.record_error();
                writer.write_all(b"ERR request line too long\n")?;
                writer.flush()?;
                return Ok(Items::Hangup);
            }
            Line::Full => {}
        }
        if first_error.is_some() {
            continue; // keep consuming announced lines to stay framed
        }
        total_bytes += line.len() as u64;
        if total_bytes > MAX_BATCH_TOTAL_BYTES {
            items = Vec::new(); // release what was buffered
            first_error = Some(format!("ERR batch exceeds {MAX_BATCH_TOTAL_BYTES} total bytes\n"));
            continue;
        }
        match parse(&line) {
            Ok(item) => items.push(item),
            Err(message) => first_error = Some(format!("ERR item {i}/{count}: {message}\n")),
        }
    }
    Ok(match first_error {
        Some(message) => Items::Bad(message),
        None => Items::Parsed(items),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexOptions;

    fn start_with(opts: IndexOptions) -> (SocketAddr, std::thread::JoinHandle<Arc<PatternIndex>>) {
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(opts)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        (addr, handle)
    }

    fn start() -> (SocketAddr, std::thread::JoinHandle<Arc<PatternIndex>>) {
        start_with(IndexOptions::default())
    }

    fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
        stream.write_all(request.as_bytes()).unwrap();
        stream.flush().unwrap();
        // One outstanding request at a time, so a throwaway BufReader
        // cannot buffer past the reply it is framing.
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        crate::protocol::read_reply(&mut reader).expect("server replied")
    }

    #[test]
    fn ingest_query_stats_shutdown_lifecycle() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        let reply = roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        let reply = roundtrip(&mut stream, "INGEST r h0 read 8;h0 read 8\n");
        assert_eq!(reply, "OK id=1 name=e1 entries=2\n");

        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64;h0 write 64\n");
        assert!(reply.starts_with("OK matches=1 label=w\n"), "{reply}");
        assert!(reply.contains("MATCH 1 e0 w "), "{reply}");
        assert!(reply.ends_with("END\n"));

        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 2\n"), "{reply}");
        assert!(reply.contains("STAT shards 1\n"), "{reply}");
        assert!(reply.contains("STAT shard0_entries 2\n"), "{reply}");
        assert!(reply.contains("STAT queries 1\n"), "{reply}");

        let reply = roundtrip(&mut stream, "BOGUS\n");
        assert!(reply.starts_with("ERR unknown verb"), "{reply}");

        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 2, "server hands the corpus back on shutdown");
    }

    #[test]
    fn batch_ingest_and_mquery_lifecycle() {
        let (addr, handle) = start_with(IndexOptions { shards: 2, ..IndexOptions::default() });
        let mut stream = TcpStream::connect(addr).unwrap();

        let reply = roundtrip(
            &mut stream,
            "BATCH INGEST 3\nw h0 write 64;h0 write 64\nr h0 read 8;h0 read 8\nw h0 write 64\n",
        );
        assert_eq!(reply, "OK batch=3 entries=3\n");

        let reply = roundtrip(&mut stream, "MQUERY k=1 2\nh0 write 64;h0 write 64\nh0 read 8\n");
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK queries=2");
        assert_eq!(lines[1], "RESULT 1 matches=1 label=w");
        assert!(lines[2].starts_with("MATCH 1 e0 w "), "{reply}");
        assert_eq!(lines[3], "RESULT 2 matches=1 label=r");
        assert!(lines[4].starts_with("MATCH 1 e1 r "), "{reply}");
        assert_eq!(*lines.last().unwrap(), "END");

        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 3\n"), "{reply}");
        assert!(reply.contains("STAT shards 2\n"), "{reply}");
        assert!(reply.contains("STAT shard0_entries 2\n"), "{reply}");
        assert!(reply.contains("STAT shard1_entries 1\n"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 3);
        assert_eq!(index.shard_sizes(), vec![2, 1]);
    }

    #[test]
    fn bad_batch_item_keeps_the_connection_framed() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        // Item 2 is malformed; the server must consume item 3 anyway and
        // reject the whole batch without ingesting anything.
        let reply = roundtrip(
            &mut stream,
            "BATCH INGEST 3\nw h0 write 64\nbroken-no-trace\nw h0 write 32\n",
        );
        assert!(reply.starts_with("ERR item 2/3:"), "{reply}");

        // The connection is still usable and nothing was ingested.
        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 0\n"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn batch_cumulative_bytes_are_capped() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Three individually legal ~6 MiB items; the third crosses the
        // 16 MiB cumulative cap, so the batch is rejected as a whole and
        // nothing is ingested — but the connection stays framed.
        let item = format!("w {}", "h0 write 64;".repeat(500_000));
        let batch = format!("BATCH INGEST 3\n{item}\n{item}\n{item}\n");
        let reply = roundtrip(&mut stream, &batch);
        assert!(reply.starts_with("ERR batch exceeds"), "{reply}");
        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 0\n"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_queries_share_the_index_without_a_global_lock() {
        let (addr, handle) = start_with(IndexOptions { shards: 4, ..IndexOptions::default() });
        let mut seed = TcpStream::connect(addr).unwrap();
        for i in 0..8 {
            let reply =
                roundtrip(&mut seed, &format!("INGEST w{i} h0 write {};h0 write {0}\n", 64 << i));
            assert!(reply.starts_with("OK id="), "{reply}");
        }
        let readers: Vec<_> = (0..4)
            .map(|r| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for i in 0..5 {
                        let bytes = 64 << ((r + i) % 8);
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        stream
                            .write_all(
                                format!("QUERY k=2 h0 write {bytes};h0 write {bytes}\n").as_bytes(),
                            )
                            .unwrap();
                        let reply = crate::protocol::read_reply(&mut reader).unwrap();
                        assert!(reply.starts_with("OK matches=2"), "{reply}");
                        assert!(reply.ends_with("END\n"), "{reply}");
                    }
                })
            })
            .collect();
        for reader in readers {
            reader.join().unwrap();
        }
        assert_eq!(roundtrip(&mut seed, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.stats().queries, 20);
    }

    #[test]
    fn idle_connection_does_not_block_other_clients() {
        let (addr, handle) = start();
        // An idle client holds its connection open the whole time.
        let idle = TcpStream::connect(addr).unwrap();
        let mut active = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut active, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        let reply = roundtrip(&mut active, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        // Shutdown must complete even though `idle` never disconnected.
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 1);
        drop(idle);
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Stream past the cap without ever sending a newline.
        let chunk = vec![b'a'; 1 << 20];
        for _ in 0..17 {
            if stream.write_all(&chunk).is_err() {
                break; // server already hung up mid-write — acceptable
            }
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        let _ = reader.read_line(&mut reply);
        if !reply.is_empty() {
            assert!(reply.starts_with("ERR request line too long"), "{reply}");
        }
        // Either way the daemon is still alive and shuts down cleanly.
        let mut fresh = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut fresh, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn survives_client_disconnect() {
        let (addr, handle) = start();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"INGEST w h0 write 64\n").unwrap();
            // Drop without reading the reply: the server must accept the
            // next connection regardless.
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn save_without_save_dir_is_a_clean_error() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert!(reply.starts_with("ERR no save directory"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn save_verb_snapshots_and_shutdown_reports_the_save() {
        let dir = std::env::temp_dir().join(format!("kastio-server-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_save_dir(Some(dir.clone()));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();

        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert_eq!(reply, "OK saved entries=1 generation=1\n");
        assert!(dir.join("MANIFEST").exists());

        let stats = roundtrip(&mut stream, "STATS\n");
        assert!(stats.contains("STAT snapshots 1\n"), "{stats}");
        assert!(stats.contains("STAT snapshot_errors 0\n"), "{stats}");
        assert!(stats.contains("STAT last_snapshot_ok 1\n"), "{stats}");
        assert!(stats.contains("STAT last_snapshot_generation 1\n"), "{stats}");

        roundtrip(&mut stream, "INGEST r h0 read 8\n");
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye saved=2 generation=2\n", "shutdown reports its save");
        let index = handle.join().unwrap();
        assert_eq!(index.snapshot_status().snapshots, 2);

        let restored =
            crate::persist::load_index(&dir, IndexOptions::default()).expect("snapshot loads");
        assert_eq!(restored.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_shutdown_save_is_reported_to_the_requesting_client() {
        // /dev/null is a file, so creating a snapshot directory under it
        // fails with a real IO error even when running as root.
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_save_dir(Some(std::path::PathBuf::from("/dev/null/corpus")));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64\n");
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert!(reply.starts_with("ERR save failed:"), "{reply}");
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert!(reply.starts_with("ERR save failed:"), "{reply}");
        assert!(reply.contains("shutting down anyway"), "{reply}");
        let index = handle.join().unwrap();
        let status = index.snapshot_status();
        assert_eq!(status.errors, 2);
        assert_eq!(status.last_ok, Some(false));
        assert_eq!(index.len(), 1, "the corpus itself is intact in memory");
    }

    #[test]
    fn shutdown_handle_stops_the_server_without_a_client() {
        let (addr, handle, shutdown) = {
            let server =
                Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default())).unwrap();
            let addr = server.local_addr().unwrap();
            let shutdown = server.shutdown_handle().unwrap();
            let handle = std::thread::spawn(move || server.serve().expect("server runs"));
            (addr, handle, shutdown)
        };
        // An idle client is connected; the handle must still stop serve().
        let idle = TcpStream::connect(addr).unwrap();
        shutdown.shutdown();
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 0);
        drop(idle);
    }

    #[test]
    fn hello_negotiates_and_other_verbs_work_without_it() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        // A client that never sends HELLO keeps working (back-compat)…
        let reply = roundtrip(&mut stream, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");

        // …and the handshake itself round-trips, with and without the
        // optional client token.
        let reply = roundtrip(&mut stream, "HELLO 1\n");
        assert_eq!(reply, crate::protocol::render_hello_reply());
        let reply = roundtrip(&mut stream, "HELLO 1 test-suite\n");
        assert!(reply.starts_with("OK kastio proto=1 "), "{reply}");

        // Unknown versions get the structured rejection, and the
        // connection stays usable.
        let reply = roundtrip(&mut stream, "HELLO 7\n");
        assert_eq!(reply, "ERR unsupported proto 7 (server speaks 1)\n");
        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        assert!(reply.starts_with("OK matches=1"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn stats_reports_connection_and_verb_counters() {
        let server =
            Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default())).unwrap();
        let addr = server.local_addr().unwrap();
        let metrics = server.metrics();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));

        let mut first = TcpStream::connect(addr).unwrap();
        roundtrip(&mut first, "HELLO 1 counter-test\n");
        roundtrip(&mut first, "INGEST w h0 write 64\n");
        roundtrip(&mut first, "BOGUS\n"); // parse error → requests+1, errors+1
        drop(first);

        let mut second = TcpStream::connect(addr).unwrap();
        roundtrip(&mut second, "QUERY k=1 h0 write 64\n");
        let stats = roundtrip(&mut second, "STATS\n");
        assert!(stats.contains("STAT connections 2\n"), "{stats}");
        assert!(stats.contains("STAT requests_total 5\n"), "{stats}");
        assert!(stats.contains("STAT request_errors 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_hello 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_ingest 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_query 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_stats 1\n"), "{stats}");
        assert!(stats.contains("STAT uptime_secs "), "{stats}");

        assert_eq!(roundtrip(&mut second, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.connections, 2);
        assert_eq!(snapshot.shutdown, 1);
        assert_eq!(snapshot.requests, 6);
        assert_eq!(snapshot.errors, 1);
    }

    #[test]
    fn metrics_verb_exposes_latency_histograms() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        for _ in 0..3 {
            roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        }
        let reply = roundtrip(&mut stream, "METRICS\n");
        assert!(reply.starts_with("OK metrics\n"), "{reply}");
        assert!(reply.ends_with("END\n"), "{reply}");
        assert!(reply.contains("# TYPE kastio_request_latency_ns histogram\n"), "{reply}");
        assert!(reply.contains("kastio_verb_requests_total{verb=\"query\"} 3\n"), "{reply}");
        assert!(
            reply.contains("kastio_request_latency_ns_count{verb=\"query\"} 3\n"),
            "every query lands in the histogram: {reply}"
        );
        assert!(
            reply.contains("kastio_request_latency_ns_bucket{verb=\"query\",le=\"+Inf\"} 3\n"),
            "{reply}"
        );
        assert!(reply.contains("kastio_stage_latency_ns_count{stage=\"kernel\"} 3\n"), "{reply}");
        assert!(reply.contains("kastio_stage_latency_ns_count{stage=\"parse\"} "), "{reply}");
        assert!(reply.contains("kastio_slowlog_entries 0\n"), "{reply}");

        // The quantiles surface in STATS too, now that query has samples.
        let stats = roundtrip(&mut stream, "STATS\n");
        assert!(stats.contains("STAT latency_query_p50_us "), "{stats}");
        assert!(stats.contains("STAT latency_query_p99_us "), "{stats}");
        assert!(stats.contains("STAT verb_metrics 1\n"), "{stats}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn traced_query_carries_a_stage_breakdown_line() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");

        let reply = roundtrip(&mut stream, "QUERY k=1 trace=1 h0 write 64\n");
        assert!(reply.starts_with("OK matches=1 label=w\n"), "{reply}");
        let lines: Vec<&str> = reply.lines().collect();
        let trace = lines[lines.len() - 2];
        assert!(trace.starts_with("TRACE total_us="), "{reply}");
        assert_eq!(*lines.last().unwrap(), "END");
        let fields: std::collections::HashMap<&str, u64> = trace
            .split_whitespace()
            .skip(1)
            .map(|kv| kv.split_once('=').unwrap())
            .map(|(k, v)| (k, v.parse().unwrap()))
            .collect();
        let total = fields["total_us"];
        let stage_sum =
            fields["parse_us"] + fields["prefilter_us"] + fields["cache_us"] + fields["kernel_us"];
        assert!(stage_sum <= total, "stages {stage_sum}µs exceed total {total}µs: {trace}");

        // An untraced query on the same connection stays byte-compatible.
        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        assert!(!reply.contains("TRACE"), "{reply}");

        // MQUERY gets one TRACE line for the whole batch.
        let reply = roundtrip(&mut stream, "MQUERY k=1 trace=1 2\nh0 write 64\nh0 write 64\n");
        assert!(reply.contains("\nTRACE total_us="), "{reply}");
        assert!(reply.ends_with("END\n"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn slow_log_records_and_serves_over_threshold_requests() {
        // Threshold 0 logs everything — the deterministic test hook.
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_slow_log(Some(0));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();

        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        let reply = roundtrip(&mut stream, "SLOWLOG LEN\n");
        assert_eq!(reply, "OK slowlog len=2\n");

        let reply = roundtrip(&mut stream, "SLOWLOG GET\n");
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK slowlog entries=3", "LEN itself was logged too: {reply}");
        // Newest first: the LEN request, then the query, then the ingest.
        assert!(lines[1].contains("verb=SLOWLOG") && lines[1].contains("args=LEN"), "{reply}");
        assert!(lines[2].contains("verb=QUERY"), "{reply}");
        assert!(lines[2].contains("args=k=1,ops=1"), "{reply}");
        assert!(lines[2].contains("kernel:"), "query entries carry stage spans: {reply}");
        assert!(lines[3].contains("verb=INGEST") && lines[3].contains("label=w"), "{reply}");
        assert!(*lines.last().unwrap() == "END", "{reply}");

        let reply = roundtrip(&mut stream, "SLOWLOG RESET\n");
        assert_eq!(reply, "OK slowlog reset\n");
        let reply = roundtrip(&mut stream, "SLOWLOG GET\n");
        assert!(reply.starts_with("OK slowlog entries=1\n"), "only the RESET itself: {reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn slow_log_is_disabled_by_default() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64\n");
        roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        assert_eq!(roundtrip(&mut stream, "SLOWLOG LEN\n"), "OK slowlog len=0\n");
        assert_eq!(roundtrip(&mut stream, "SLOWLOG GET\n"), "OK slowlog entries=0\nEND\n");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn batch_header_eof_before_items_closes_cleanly() {
        let (addr, handle) = start();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Announce 2 items but hang up after the header.
            stream.write_all(b"BATCH INGEST 2\n").unwrap();
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 0, "a truncated batch ingests nothing");
    }
}
