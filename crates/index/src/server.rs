//! The `serve` daemon: a [`TcpListener`] bound around a [`PatternIndex`],
//! served by a pluggable [`Runtime`](crate::runtime::Runtime).
//!
//! Deliberately dependency-free (no async runtime — the build environment
//! is offline). This module owns the daemon's *configuration* surface:
//! the [`Server`] builder, the shared [`ServerMetrics`] counters, and the
//! [`ShutdownHandle`]. The actual socket loops live in
//! [`crate::runtime`] — thread-per-connection by default, or a
//! hand-rolled epoll reactor on Linux (`--runtime epoll`) — and the
//! runtime-agnostic protocol semantics in `crate::runtime::dispatch`, so
//! the wire bytes are identical whichever runtime is serving.
//!
//! There is **no server-side lock**: the index is internally sharded and
//! synchronised (see [`crate::index`]), so handlers share it behind a
//! plain [`Arc`]. `QUERY`/`MQUERY` take shard *read* locks and run
//! concurrently with each other; `INGEST`/`BATCH INGEST` write-lock only
//! the shard that owns each new entry, so writers never stall queries on
//! the other shards. Within a query the index additionally fans the
//! kernel batch out across scoped threads, which is where the actual CPU
//! time goes.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kastio_obs::{Histogram, SlowLog, StripedHistogram};
use kastio_quota::MemoryQuota;

use crate::index::PatternIndex;
use crate::protocol::{MetricsSnapshot, Request};
use crate::runtime::{RuntimeKind, ServeState};
use crate::wal::WalManager;

/// Per-verb histogram slots, in [`MetricsSnapshot::verb_counts`] order.
pub(crate) const VERB_NAMES: [&str; 10] = [
    "hello",
    "ingest",
    "batch_ingest",
    "query",
    "mquery",
    "stats",
    "save",
    "shutdown",
    "metrics",
    "slowlog",
];

/// Pipeline stage histogram slots, in request order. `parse` covers
/// request-line parsing (plus item-line reads for the batched forms);
/// `prefilter`/`cache`/`kernel` come from the index's [`QueryTimings`];
/// `reply` is the reply write + flush.
const STAGE_NAMES: [&str; 5] = ["parse", "prefilter", "cache", "kernel", "reply"];

pub(crate) const STAGE_PARSE: usize = 0;
pub(crate) const STAGE_PREFILTER: usize = 1;
pub(crate) const STAGE_CACHE: usize = 2;
pub(crate) const STAGE_KERNEL: usize = 3;
pub(crate) const STAGE_REPLY: usize = 4;

/// The histogram slot a parsed request records into.
pub(crate) fn verb_slot(request: &Request) -> usize {
    match request {
        Request::Hello { .. } => 0,
        Request::Ingest { .. } => 1,
        Request::BatchIngest { .. } => 2,
        Request::Query { .. } => 3,
        Request::MultiQuery { .. } => 4,
        Request::Stats => 5,
        Request::Save => 6,
        Request::Shutdown => 7,
        Request::Metrics => 8,
        Request::Slowlog(_) => 9,
    }
}

/// Live connection/request counters of a running daemon, shared by every
/// handler thread and reported in the `STATS` reply.
///
/// Counters are plain relaxed atomics: they are observability data with
/// no ordering relationship to the index's own synchronisation, so the
/// cheapest increment is the right one. Semantics: `requests` counts
/// every non-blank request line received (parsed or not); the per-verb
/// counters count *successfully parsed* requests (a batched form counts
/// once, on its header); `errors` counts `ERR` replies sent, whatever
/// their cause (parse failure, bad batch item, unsupported `HELLO`,
/// failed save, over-long line, memory shed). The governance counters
/// count load deliberately refused: `shed_memory` is `ERR busy
/// reason=memory` replies (each one a client-visible shed, so the two
/// tallies match exactly), `shed_connections` is connections refused at
/// the accept loop with `ERR busy reason=connections`, and `timeouts` is
/// connections closed by the `--idle-timeout-secs` read deadline.
///
/// Latency is recorded into [`StripedHistogram`]s — one per verb for
/// total request latency, one per pipeline stage — so concurrent handler
/// threads rarely contend; `METRICS` and `STATS` merge the stripes into
/// point-in-time [`Histogram`] snapshots.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    /// `ERR busy reason=memory` replies sent (ingest admission or
    /// request-buffer admission refused).
    shed_memory: AtomicU64,
    /// Connections refused at the accept loop (`--max-connections`).
    shed_connections: AtomicU64,
    /// Connections closed by the idle-read deadline.
    timeouts: AtomicU64,
    verbs: [AtomicU64; VERB_NAMES.len()],
    /// Per-verb request latency (read → reply flushed), nanoseconds.
    verb_latency: [StripedHistogram; VERB_NAMES.len()],
    /// Per-stage latency across all requests, nanoseconds.
    stage_latency: [StripedHistogram; STAGE_NAMES.len()],
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        ServerMetrics {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed_memory: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            verbs: std::array::from_fn(|_| AtomicU64::new(0)),
            verb_latency: std::array::from_fn(|_| StripedHistogram::new()),
            stage_latency: std::array::from_fn(|_| StripedHistogram::new()),
        }
    }

    pub(crate) fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one received request line; `parsed` selects the per-verb
    /// counter (`None` for a line that failed to parse).
    pub(crate) fn record_request(&self, parsed: Option<&Request>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(request) = parsed {
            self.verbs[verb_slot(request)].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_memory(&self) {
        self.shed_memory.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_connection(&self) {
        self.shed_connections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed request's total latency into its verb's
    /// histogram.
    pub(crate) fn record_latency(&self, slot: usize, total_ns: u64) {
        self.verb_latency[slot].record(total_ns);
    }

    /// Records one pipeline stage span.
    pub(crate) fn record_stage(&self, stage: usize, ns: u64) {
        self.stage_latency[stage].record(ns);
    }

    /// Microseconds since the listener was bound — the slow log's
    /// timestamp base.
    pub(crate) fn uptime_micros(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Merged per-verb latency histograms for verbs with at least one
    /// sample, in documentation order.
    pub fn verb_latency_snapshots(&self) -> Vec<(&'static str, Histogram)> {
        VERB_NAMES
            .iter()
            .zip(&self.verb_latency)
            .filter(|(_, striped)| striped.count() > 0)
            .map(|(name, striped)| (*name, striped.snapshot()))
            .collect()
    }

    /// Merged per-stage latency histograms for stages with at least one
    /// sample, in pipeline order.
    pub fn stage_latency_snapshots(&self) -> Vec<(&'static str, Histogram)> {
        STAGE_NAMES
            .iter()
            .zip(&self.stage_latency)
            .filter(|(_, striped)| striped.count() > 0)
            .map(|(name, striped)| (*name, striped.snapshot()))
            .collect()
    }

    /// Per-verb `[p50, p95, p99]` total-latency quantiles in
    /// microseconds, for verbs with at least one sample — the `STATS`
    /// latency block.
    pub fn latency_quantiles(&self) -> Vec<(&'static str, [u64; 3])> {
        self.verb_latency_snapshots()
            .into_iter()
            .map(|(name, histogram)| {
                let us = |p: f64| histogram.percentile(p) / 1_000;
                (name, [us(50.0), us(95.0), us(99.0)])
            })
            .collect()
    }

    /// A point-in-time copy of every counter, for rendering or testing.
    /// The memory gauges (`mem_*`) are zero here — they live on the
    /// [`MemoryQuota`], overlaid by
    /// [`ServerMetrics::snapshot_with_quota`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let verb = |slot: usize| self.verbs[slot].load(Ordering::Relaxed);
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs(),
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed_memory: self.shed_memory.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            hello: verb(0),
            ingest: verb(1),
            batch_ingest: verb(2),
            query: verb(3),
            mquery: verb(4),
            stats: verb(5),
            save: verb(6),
            shutdown: verb(7),
            metrics: verb(8),
            slowlog: verb(9),
            ..MetricsSnapshot::default()
        }
    }

    /// [`ServerMetrics::snapshot`] with the memory-governance gauges of
    /// the daemon's [`MemoryQuota`] overlaid — the form `STATS` and
    /// `METRICS` report.
    pub fn snapshot_with_quota(&self, quota: &MemoryQuota) -> MetricsSnapshot {
        let mut snapshot = self.snapshot();
        snapshot.mem_used_bytes = quota.used();
        snapshot.mem_limit_bytes = quota.limit().unwrap_or(0);
        snapshot.mem_unreclaimable_bytes = quota.unreclaimable();
        snapshot.mem_reclaims = quota.reclaims();
        snapshot
    }
}

/// A running (not yet serving) daemon: a bound listener plus the index it
/// will serve.
///
/// Binding is separated from serving so callers can learn the actual
/// address before the blocking accept loop starts — essential with an
/// ephemeral port (`:0`), which is how the integration tests and the
/// in-process example run.
///
/// # Examples
///
/// ```no_run
/// use kastio_index::{IndexOptions, PatternIndex, Server};
///
/// # fn main() -> std::io::Result<()> {
/// let index = PatternIndex::new(IndexOptions { shards: 4, ..IndexOptions::default() });
/// let server = Server::bind("127.0.0.1:0", index)?;
/// println!("listening on {}", server.local_addr()?);
/// let _index_back = server.serve()?; // blocks until SHUTDOWN
/// # Ok(())
/// # }
/// ```
pub struct Server {
    listener: TcpListener,
    index: Arc<PatternIndex>,
    stop: Arc<AtomicBool>,
    save_dir: Option<PathBuf>,
    wal: Option<Arc<WalManager>>,
    metrics: Arc<ServerMetrics>,
    slow_log: Arc<SlowLog>,
    /// The daemon's memory budget (unlimited by default). Shared with
    /// the index once [`Server::with_memory_limit`] attaches a limit.
    quota: MemoryQuota,
    max_connections: usize,
    idle_timeout: Option<Duration>,
    runtime: RuntimeKind,
}

/// Default `--max-connections`: generous enough that only a runaway
/// client fleet (or a fd leak) ever hits it, small enough that the
/// thread-per-connection model cannot be driven into thread exhaustion.
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// A clonable handle that stops a running [`Server::serve`] loop from
/// another thread — the signal monitor uses one to turn `SIGTERM` into
/// the same clean shutdown a `SHUTDOWN` request performs (handlers
/// joined, corpus intact and saveable).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: raises the stop flag and nudges the accept loop
    /// awake with a throwaway connection so it observes the flag.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds a listener on `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port) around the given index.
    ///
    /// # Errors
    ///
    /// Propagates the [`TcpListener::bind`] failure.
    pub fn bind(addr: &str, index: PatternIndex) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            index: Arc::new(index),
            stop: Arc::new(AtomicBool::new(false)),
            save_dir: None,
            wal: None,
            metrics: Arc::new(ServerMetrics::new()),
            slow_log: Arc::new(SlowLog::disabled()),
            quota: MemoryQuota::unlimited(),
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout: None,
            runtime: RuntimeKind::default(),
        })
    }

    /// Selects the serving runtime (default [`RuntimeKind::Threads`]).
    /// The wire protocol is byte-identical under every runtime; what
    /// changes is the concurrency model — see [`crate::runtime`].
    #[must_use]
    pub fn with_runtime(mut self, runtime: RuntimeKind) -> Server {
        self.runtime = runtime;
        self
    }

    /// Attaches a memory budget of `limit` bytes (`None`: unlimited, the
    /// default). With a limit, the corpus and the kernel cache are
    /// charged against it (the cache doubles as the reclaim target), and
    /// requests that would grow past it are shed with
    /// `ERR busy reason=memory` — the connection stays open, the daemon
    /// stays up, and the shed is counted in `STATS` / `METRICS`.
    #[must_use]
    pub fn with_memory_limit(mut self, limit: Option<u64>) -> Server {
        self.quota = MemoryQuota::new(limit);
        if limit.is_some() {
            self.index.attach_quota(&self.quota);
        }
        self
    }

    /// Caps concurrently served connections (default
    /// [`DEFAULT_MAX_CONNECTIONS`]). Past the cap the accept loop sheds:
    /// it replies `ERR busy reason=connections` and closes the socket
    /// *without* spawning a handler thread, so overload cannot exhaust
    /// threads or memory. Clamped to at least 1.
    #[must_use]
    pub fn with_max_connections(mut self, max: usize) -> Server {
        self.max_connections = max.max(1);
        self
    }

    /// Arms a per-connection read deadline (`None`, the default, waits
    /// forever). A connection idle past the deadline is closed and
    /// counted in the `timeouts` counter, so abandoned sockets release
    /// their threads and registry slots.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Option<Duration>) -> Server {
        self.idle_timeout = timeout;
        self
    }

    /// The daemon's memory quota (shared, clonable handle) — lets tests
    /// and embedding processes observe `used()` while serving.
    pub fn quota(&self) -> MemoryQuota {
        self.quota.clone()
    }

    /// Configures the slow-query log threshold: requests whose total
    /// latency reaches `threshold_micros` are recorded (newest
    /// [`SlowLog::DEFAULT_CAPACITY`] kept) and exposed through the
    /// `SLOWLOG` verb. `None` (the default) disables recording — the
    /// verb still answers, with an empty log. Threshold 0 logs every
    /// request, mirroring Redis's `slowlog-log-slower-than 0` test hook.
    #[must_use]
    pub fn with_slow_log(mut self, threshold_micros: Option<u64>) -> Server {
        self.slow_log = Arc::new(SlowLog::new(SlowLog::DEFAULT_CAPACITY, threshold_micros));
        self
    }

    /// Configures the snapshot directory: `SAVE` requests write there,
    /// and `SHUTDOWN` snapshots there *before* replying, so the
    /// requesting client sees the save outcome (`OK bye saved=…` or
    /// `ERR save failed: …`) instead of a silent post-reply failure.
    #[must_use]
    pub fn with_save_dir(mut self, dir: Option<PathBuf>) -> Server {
        self.save_dir = dir;
        self
    }

    /// Attaches a write-ahead log: every `INGEST` / `BATCH INGEST` is
    /// appended and group-commit-fsync'd *before* its `OK` reply is
    /// written (ack-after-fsync), `SAVE` compacts the log against the
    /// snapshot generation (and says so: `… wal=truncated`), and the
    /// `STATS` / `METRICS` wal counters go live. `None` (the default)
    /// keeps the snapshot-only durability story and every reply byte
    /// unchanged.
    #[must_use]
    pub fn with_wal(mut self, wal: Option<Arc<WalManager>>) -> Server {
        self.wal = wal;
        self
    }

    /// The served index, shared. Lets a periodic
    /// [`crate::persist::Snapshotter`] or a signal monitor observe and
    /// snapshot the corpus while [`Server::serve`] blocks.
    pub fn index(&self) -> Arc<PatternIndex> {
        Arc::clone(&self.index)
    }

    /// The daemon's connection/request counters, shared. Lets a caller
    /// (tests, an embedding process) observe traffic while
    /// [`Server::serve`] blocks.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that stops the serve loop from another thread.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure (the handle needs the
    /// bound address for its wake-up nudge).
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle { stop: Arc::clone(&self.stop), addr: self.local_addr()? })
    }

    /// The address the listener actually bound.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections on the selected runtime until a client sends
    /// `SHUTDOWN` (or a [`ShutdownHandle`] fires), then returns the
    /// shared index (so the caller can persist it or inspect its
    /// [`crate::index::SnapshotStatus`]).
    ///
    /// Accept errors are treated as transient (EMFILE under fd pressure,
    /// ECONNABORTED, …): runtimes back off briefly and retry, so the
    /// in-memory corpus is never lost to a hiccup. Only a long unbroken
    /// run of failures abandons accepting — and even then the index is
    /// returned intact so the caller's save path still runs.
    ///
    /// # Errors
    ///
    /// Runtime setup failures only — the epoll runtime can fail to build
    /// its reactor (`epoll_create1`, `eventfd`) or is simply
    /// [`io::ErrorKind::Unsupported`] off Linux; the threads runtime
    /// never fails after a successful bind.
    pub fn serve(self) -> io::Result<Arc<PatternIndex>> {
        let addr = self.listener.local_addr()?;
        // One account for every connection's in-flight request buffers:
        // admission is against the *root* budget anyway, and a shared
        // account keeps the STATS story simple.
        let buffers = self.quota.account("buffers");
        let state = ServeState {
            listener: self.listener,
            addr,
            index: self.index,
            stop: self.stop,
            save_dir: self.save_dir,
            wal: self.wal,
            metrics: self.metrics,
            slow_log: self.slow_log,
            quota: self.quota,
            buffers,
            max_connections: self.max_connections,
            idle_timeout: self.idle_timeout,
        };
        self.runtime.runtime().serve(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexOptions;
    use std::io::{BufRead, BufReader, Write};

    /// The runtime this test process exercises: `threads` by default,
    /// overridden by `KASTIO_TEST_RUNTIME=epoll` so CI can run the whole
    /// suite — byte for byte the same assertions — against the reactor.
    fn test_runtime() -> RuntimeKind {
        match std::env::var("KASTIO_TEST_RUNTIME") {
            Ok(name) => name.parse().expect("valid KASTIO_TEST_RUNTIME"),
            Err(_) => RuntimeKind::default(),
        }
    }

    fn start_with(opts: IndexOptions) -> (SocketAddr, std::thread::JoinHandle<Arc<PatternIndex>>) {
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(opts))
            .unwrap()
            .with_runtime(test_runtime());
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        (addr, handle)
    }

    fn start() -> (SocketAddr, std::thread::JoinHandle<Arc<PatternIndex>>) {
        start_with(IndexOptions::default())
    }

    /// Like [`start_with`] but lets the test apply governance builders
    /// (`with_memory_limit`, `with_max_connections`, ...) before serving.
    fn start_configured(
        opts: IndexOptions,
        configure: impl FnOnce(Server) -> Server,
    ) -> (SocketAddr, std::thread::JoinHandle<Arc<PatternIndex>>) {
        let server = configure(
            Server::bind("127.0.0.1:0", PatternIndex::new(opts))
                .unwrap()
                .with_runtime(test_runtime()),
        );
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        (addr, handle)
    }

    /// Extract `STAT <key> <value>` from a STATS reply.
    fn stat_value(stats: &str, key: &str) -> u64 {
        let prefix = format!("STAT {key} ");
        stats
            .lines()
            .find_map(|l| l.strip_prefix(&prefix))
            .unwrap_or_else(|| panic!("missing {key} in {stats}"))
            .parse()
            .unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
        stream.write_all(request.as_bytes()).unwrap();
        stream.flush().unwrap();
        // One outstanding request at a time, so a throwaway BufReader
        // cannot buffer past the reply it is framing.
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        crate::protocol::read_reply(&mut reader).expect("server replied")
    }

    #[test]
    fn ingest_query_stats_shutdown_lifecycle() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        let reply = roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        let reply = roundtrip(&mut stream, "INGEST r h0 read 8;h0 read 8\n");
        assert_eq!(reply, "OK id=1 name=e1 entries=2\n");

        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64;h0 write 64\n");
        assert!(reply.starts_with("OK matches=1 label=w\n"), "{reply}");
        assert!(reply.contains("MATCH 1 e0 w "), "{reply}");
        assert!(reply.ends_with("END\n"));

        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 2\n"), "{reply}");
        assert!(reply.contains("STAT shards 1\n"), "{reply}");
        assert!(reply.contains("STAT shard0_entries 2\n"), "{reply}");
        assert!(reply.contains("STAT queries 1\n"), "{reply}");

        let reply = roundtrip(&mut stream, "BOGUS\n");
        assert!(reply.starts_with("ERR unknown verb"), "{reply}");

        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 2, "server hands the corpus back on shutdown");
    }

    #[test]
    fn batch_ingest_and_mquery_lifecycle() {
        let (addr, handle) = start_with(IndexOptions { shards: 2, ..IndexOptions::default() });
        let mut stream = TcpStream::connect(addr).unwrap();

        let reply = roundtrip(
            &mut stream,
            "BATCH INGEST 3\nw h0 write 64;h0 write 64\nr h0 read 8;h0 read 8\nw h0 write 64\n",
        );
        assert_eq!(reply, "OK batch=3 entries=3\n");

        let reply = roundtrip(&mut stream, "MQUERY k=1 2\nh0 write 64;h0 write 64\nh0 read 8\n");
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK queries=2");
        assert_eq!(lines[1], "RESULT 1 matches=1 label=w");
        assert!(lines[2].starts_with("MATCH 1 e0 w "), "{reply}");
        assert_eq!(lines[3], "RESULT 2 matches=1 label=r");
        assert!(lines[4].starts_with("MATCH 1 e1 r "), "{reply}");
        assert_eq!(*lines.last().unwrap(), "END");

        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 3\n"), "{reply}");
        assert!(reply.contains("STAT shards 2\n"), "{reply}");
        assert!(reply.contains("STAT shard0_entries 2\n"), "{reply}");
        assert!(reply.contains("STAT shard1_entries 1\n"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 3);
        assert_eq!(index.shard_sizes(), vec![2, 1]);
    }

    #[test]
    fn bad_batch_item_keeps_the_connection_framed() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        // Item 2 is malformed; the server must consume item 3 anyway and
        // reject the whole batch without ingesting anything.
        let reply = roundtrip(
            &mut stream,
            "BATCH INGEST 3\nw h0 write 64\nbroken-no-trace\nw h0 write 32\n",
        );
        assert!(reply.starts_with("ERR item 2/3:"), "{reply}");

        // The connection is still usable and nothing was ingested.
        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 0\n"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn batch_cumulative_bytes_are_capped() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Twenty individually legal ~0.9 MiB items (each under the 1 MiB
        // per-line cap) that together cross the 16 MiB cumulative cap, so
        // the batch is rejected as a whole and nothing is ingested — but
        // the connection stays framed.
        let item = format!("w {}", "h0 write 64;".repeat(75_000));
        assert!(item.len() < 1 << 20, "item must stay under the line cap");
        let mut batch = String::from("BATCH INGEST 20\n");
        for _ in 0..20 {
            batch.push_str(&item);
            batch.push('\n');
        }
        let reply = roundtrip(&mut stream, &batch);
        assert!(reply.starts_with("ERR batch exceeds"), "{reply}");
        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 0\n"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_queries_share_the_index_without_a_global_lock() {
        let (addr, handle) = start_with(IndexOptions { shards: 4, ..IndexOptions::default() });
        let mut seed = TcpStream::connect(addr).unwrap();
        for i in 0..8 {
            let reply =
                roundtrip(&mut seed, &format!("INGEST w{i} h0 write {};h0 write {0}\n", 64 << i));
            assert!(reply.starts_with("OK id="), "{reply}");
        }
        let readers: Vec<_> = (0..4)
            .map(|r| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for i in 0..5 {
                        let bytes = 64 << ((r + i) % 8);
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        stream
                            .write_all(
                                format!("QUERY k=2 h0 write {bytes};h0 write {bytes}\n").as_bytes(),
                            )
                            .unwrap();
                        let reply = crate::protocol::read_reply(&mut reader).unwrap();
                        assert!(reply.starts_with("OK matches=2"), "{reply}");
                        assert!(reply.ends_with("END\n"), "{reply}");
                    }
                })
            })
            .collect();
        for reader in readers {
            reader.join().unwrap();
        }
        assert_eq!(roundtrip(&mut seed, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.stats().queries, 20);
    }

    #[test]
    fn idle_connection_does_not_block_other_clients() {
        let (addr, handle) = start();
        // An idle client holds its connection open the whole time.
        let idle = TcpStream::connect(addr).unwrap();
        let mut active = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut active, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        let reply = roundtrip(&mut active, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        // Shutdown must complete even though `idle` never disconnected.
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 1);
        drop(idle);
    }

    #[test]
    fn oversized_request_line_is_rejected_and_drained() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Stream 2 MiB — double the cap — before the newline. The server
        // must answer with a bounded error, drain the rest of the line,
        // and keep the connection framed for the next request.
        let mut line = vec![b'a'; 2 << 20];
        line.push(b'\n');
        stream.write_all(&line).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "ERR line too long\n");
        // Same connection, next request: fully usable.
        let reply = roundtrip(&mut stream, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn memory_pressure_sheds_ingests_but_keeps_serving() {
        let (addr, handle) =
            start_configured(IndexOptions::default(), |s| s.with_memory_limit(Some(4096)));
        let mut stream = TcpStream::connect(addr).unwrap();

        // A small ingest fits the 4 KiB budget.
        let reply = roundtrip(&mut stream, "INGEST small h0 write 64;h0 write 64\n");
        assert!(reply.starts_with("OK id=0"), "{reply}");

        // Each of these would add ~5 KiB of corpus; all three must be
        // shed with the busy error, and the connection must stay open.
        let fat = format!("INGEST fat{{}} {}\n", "h0 write 64;".repeat(100));
        let mut busy_seen = 0u64;
        for i in 0..3 {
            let reply = roundtrip(&mut stream, &fat.replace("{}", &i.to_string()));
            assert_eq!(reply, "ERR busy reason=memory\n");
            busy_seen += 1;
        }

        // A batch whose first item is over budget sheds the same way
        // (and counts once, like the single busy reply the client saw).
        let batch = format!("BATCH INGEST 1\nw {}\n", "h0 write 64;".repeat(100));
        let reply = roundtrip(&mut stream, &batch);
        assert!(reply.starts_with("ERR busy reason=memory"), "{reply}");
        busy_seen += 1;

        // Reads still work under pressure and the books balance: the shed
        // tally equals the busy replies the client observed, and usage
        // never exceeds the configured limit.
        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64;h0 write 64\n");
        assert!(reply.starts_with("OK matches=1"), "{reply}");
        let stats = roundtrip(&mut stream, "STATS\n");
        assert_eq!(stat_value(&stats, "shed_memory"), busy_seen);
        assert_eq!(stat_value(&stats, "mem_limit_bytes"), 4096);
        assert!(stat_value(&stats, "mem_used_bytes") <= 4096, "{stats}");
        // The interner held tokens before STATS ran, so the report-only
        // accounts must show up — and they are a subset of mem_used_bytes.
        let unreclaimable = stat_value(&stats, "mem_unreclaimable_bytes");
        assert!(unreclaimable > 0, "interned tokens are charged: {stats}");
        assert!(unreclaimable <= stat_value(&stats, "mem_used_bytes"), "{stats}");
        assert_eq!(stat_value(&stats, "entries"), 1);

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn connection_admission_sheds_with_busy_reply() {
        let (addr, handle) =
            start_configured(IndexOptions::default(), |s| s.with_max_connections(1));
        let mut first = TcpStream::connect(addr).unwrap();
        // Roundtrip guarantees the first handler thread is registered
        // before the second connection races the accept loop.
        let reply = roundtrip(&mut first, "INGEST w h0 write 64\n");
        assert!(reply.starts_with("OK id=0"), "{reply}");

        let second = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(second);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "ERR busy reason=connections\n");
        // The shed connection is closed immediately after the error.
        reply.clear();
        assert_eq!(reader.read_line(&mut reply).unwrap(), 0);

        let stats = roundtrip(&mut first, "STATS\n");
        assert_eq!(stat_value(&stats, "shed_connections"), 1);
        // No request was ever read from the shed connection.
        assert_eq!(stat_value(&stats, "request_errors"), 0);

        assert_eq!(roundtrip(&mut first, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn idle_timeout_closes_silent_connections() {
        let (addr, handle) = start_configured(IndexOptions::default(), |s| {
            s.with_idle_timeout(Some(Duration::from_millis(50)))
        });
        let idle = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(idle);
        // Say nothing: the server must hang up on us, not the reverse.
        let mut line = String::new();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "{line}");

        let mut fresh = TcpStream::connect(addr).unwrap();
        let stats = roundtrip(&mut fresh, "STATS\n");
        assert_eq!(stat_value(&stats, "timeouts"), 1);
        assert_eq!(roundtrip(&mut fresh, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn ungoverned_stats_report_zeroed_governance_keys() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        let stats = roundtrip(&mut stream, "STATS\n");
        for key in [
            "mem_used_bytes",
            "mem_limit_bytes",
            "mem_unreclaimable_bytes",
            "mem_reclaims",
            "shed_memory",
            "timeouts",
        ] {
            assert_eq!(stat_value(&stats, key), 0, "{key}");
        }
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn survives_client_disconnect() {
        let (addr, handle) = start();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"INGEST w h0 write 64\n").unwrap();
            // Drop without reading the reply: the server must accept the
            // next connection regardless.
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn save_without_save_dir_is_a_clean_error() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert!(reply.starts_with("ERR no save directory"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn save_verb_snapshots_and_shutdown_reports_the_save() {
        let dir = std::env::temp_dir().join(format!("kastio-server-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_runtime(test_runtime())
            .with_save_dir(Some(dir.clone()));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();

        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert_eq!(reply, "OK saved entries=1 generation=1\n");
        assert!(dir.join("MANIFEST").exists());

        let stats = roundtrip(&mut stream, "STATS\n");
        assert!(stats.contains("STAT snapshots 1\n"), "{stats}");
        assert!(stats.contains("STAT snapshot_errors 0\n"), "{stats}");
        assert!(stats.contains("STAT last_snapshot_ok 1\n"), "{stats}");
        assert!(stats.contains("STAT last_snapshot_generation 1\n"), "{stats}");

        roundtrip(&mut stream, "INGEST r h0 read 8\n");
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye saved=2 generation=2\n", "shutdown reports its save");
        let index = handle.join().unwrap();
        assert_eq!(index.snapshot_status().snapshots, 2);

        let restored =
            crate::persist::load_index(&dir, IndexOptions::default()).expect("snapshot loads");
        assert_eq!(restored.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_shutdown_save_is_reported_to_the_requesting_client() {
        // /dev/null is a file, so creating a snapshot directory under it
        // fails with a real IO error even when running as root.
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_runtime(test_runtime())
            .with_save_dir(Some(std::path::PathBuf::from("/dev/null/corpus")));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64\n");
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert!(reply.starts_with("ERR save failed:"), "{reply}");
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert!(reply.starts_with("ERR save failed:"), "{reply}");
        assert!(reply.contains("shutting down anyway"), "{reply}");
        let index = handle.join().unwrap();
        let status = index.snapshot_status();
        assert_eq!(status.errors, 2);
        assert_eq!(status.last_ok, Some(false));
        assert_eq!(index.len(), 1, "the corpus itself is intact in memory");
    }

    #[test]
    fn shutdown_handle_stops_the_server_without_a_client() {
        let (addr, handle, shutdown) = {
            let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
                .unwrap()
                .with_runtime(test_runtime());
            let addr = server.local_addr().unwrap();
            let shutdown = server.shutdown_handle().unwrap();
            let handle = std::thread::spawn(move || server.serve().expect("server runs"));
            (addr, handle, shutdown)
        };
        // An idle client is connected; the handle must still stop serve().
        let idle = TcpStream::connect(addr).unwrap();
        shutdown.shutdown();
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 0);
        drop(idle);
    }

    #[test]
    fn hello_negotiates_and_other_verbs_work_without_it() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        // A client that never sends HELLO keeps working (back-compat)…
        let reply = roundtrip(&mut stream, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");

        // …and the handshake itself round-trips, with and without the
        // optional client token.
        let reply = roundtrip(&mut stream, "HELLO 1\n");
        assert_eq!(reply, crate::protocol::render_hello_reply());
        let reply = roundtrip(&mut stream, "HELLO 1 test-suite\n");
        assert!(reply.starts_with("OK kastio proto=1 "), "{reply}");

        // Unknown versions get the structured rejection, and the
        // connection stays usable.
        let reply = roundtrip(&mut stream, "HELLO 7\n");
        assert_eq!(reply, "ERR unsupported proto 7 (server speaks 1)\n");
        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        assert!(reply.starts_with("OK matches=1"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn stats_reports_connection_and_verb_counters() {
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_runtime(test_runtime());
        let addr = server.local_addr().unwrap();
        let metrics = server.metrics();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));

        let mut first = TcpStream::connect(addr).unwrap();
        roundtrip(&mut first, "HELLO 1 counter-test\n");
        roundtrip(&mut first, "INGEST w h0 write 64\n");
        roundtrip(&mut first, "BOGUS\n"); // parse error → requests+1, errors+1
        drop(first);

        let mut second = TcpStream::connect(addr).unwrap();
        roundtrip(&mut second, "QUERY k=1 h0 write 64\n");
        let stats = roundtrip(&mut second, "STATS\n");
        assert!(stats.contains("STAT connections 2\n"), "{stats}");
        assert!(stats.contains("STAT requests_total 5\n"), "{stats}");
        assert!(stats.contains("STAT request_errors 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_hello 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_ingest 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_query 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_stats 1\n"), "{stats}");
        assert!(stats.contains("STAT uptime_secs "), "{stats}");

        assert_eq!(roundtrip(&mut second, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.connections, 2);
        assert_eq!(snapshot.shutdown, 1);
        assert_eq!(snapshot.requests, 6);
        assert_eq!(snapshot.errors, 1);
    }

    #[test]
    fn metrics_verb_exposes_latency_histograms() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        for _ in 0..3 {
            roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        }
        let reply = roundtrip(&mut stream, "METRICS\n");
        assert!(reply.starts_with("OK metrics\n"), "{reply}");
        assert!(reply.ends_with("END\n"), "{reply}");
        assert!(reply.contains("# TYPE kastio_request_latency_ns histogram\n"), "{reply}");
        assert!(reply.contains("kastio_verb_requests_total{verb=\"query\"} 3\n"), "{reply}");
        assert!(
            reply.contains("kastio_request_latency_ns_count{verb=\"query\"} 3\n"),
            "every query lands in the histogram: {reply}"
        );
        assert!(
            reply.contains("kastio_request_latency_ns_bucket{verb=\"query\",le=\"+Inf\"} 3\n"),
            "{reply}"
        );
        assert!(reply.contains("kastio_stage_latency_ns_count{stage=\"kernel\"} 3\n"), "{reply}");
        assert!(reply.contains("kastio_stage_latency_ns_count{stage=\"parse\"} "), "{reply}");
        assert!(reply.contains("kastio_slowlog_entries 0\n"), "{reply}");

        // The quantiles surface in STATS too, now that query has samples.
        let stats = roundtrip(&mut stream, "STATS\n");
        assert!(stats.contains("STAT latency_query_p50_us "), "{stats}");
        assert!(stats.contains("STAT latency_query_p99_us "), "{stats}");
        assert!(stats.contains("STAT verb_metrics 1\n"), "{stats}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn traced_query_carries_a_stage_breakdown_line() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");

        let reply = roundtrip(&mut stream, "QUERY k=1 trace=1 h0 write 64\n");
        assert!(reply.starts_with("OK matches=1 label=w\n"), "{reply}");
        let lines: Vec<&str> = reply.lines().collect();
        let trace = lines[lines.len() - 2];
        assert!(trace.starts_with("TRACE total_us="), "{reply}");
        assert_eq!(*lines.last().unwrap(), "END");
        let fields: std::collections::HashMap<&str, u64> = trace
            .split_whitespace()
            .skip(1)
            .map(|kv| kv.split_once('=').unwrap())
            .map(|(k, v)| (k, v.parse().unwrap()))
            .collect();
        let total = fields["total_us"];
        let stage_sum =
            fields["parse_us"] + fields["prefilter_us"] + fields["cache_us"] + fields["kernel_us"];
        assert!(stage_sum <= total, "stages {stage_sum}µs exceed total {total}µs: {trace}");

        // An untraced query on the same connection stays byte-compatible.
        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        assert!(!reply.contains("TRACE"), "{reply}");

        // MQUERY gets one TRACE line for the whole batch.
        let reply = roundtrip(&mut stream, "MQUERY k=1 trace=1 2\nh0 write 64\nh0 write 64\n");
        assert!(reply.contains("\nTRACE total_us="), "{reply}");
        assert!(reply.ends_with("END\n"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn slow_log_records_and_serves_over_threshold_requests() {
        // Threshold 0 logs everything — the deterministic test hook.
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_runtime(test_runtime())
            .with_slow_log(Some(0));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();

        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        let reply = roundtrip(&mut stream, "SLOWLOG LEN\n");
        assert_eq!(reply, "OK slowlog len=2\n");

        let reply = roundtrip(&mut stream, "SLOWLOG GET\n");
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK slowlog entries=3", "LEN itself was logged too: {reply}");
        // Newest first: the LEN request, then the query, then the ingest.
        assert!(lines[1].contains("verb=SLOWLOG") && lines[1].contains("args=LEN"), "{reply}");
        assert!(lines[2].contains("verb=QUERY"), "{reply}");
        assert!(lines[2].contains("args=k=1,ops=1"), "{reply}");
        assert!(lines[2].contains("kernel:"), "query entries carry stage spans: {reply}");
        assert!(lines[3].contains("verb=INGEST") && lines[3].contains("label=w"), "{reply}");
        assert!(*lines.last().unwrap() == "END", "{reply}");

        let reply = roundtrip(&mut stream, "SLOWLOG RESET\n");
        assert_eq!(reply, "OK slowlog reset\n");
        let reply = roundtrip(&mut stream, "SLOWLOG GET\n");
        assert!(reply.starts_with("OK slowlog entries=1\n"), "only the RESET itself: {reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn slow_log_is_disabled_by_default() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64\n");
        roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        assert_eq!(roundtrip(&mut stream, "SLOWLOG LEN\n"), "OK slowlog len=0\n");
        assert_eq!(roundtrip(&mut stream, "SLOWLOG GET\n"), "OK slowlog entries=0\nEND\n");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn batch_header_eof_before_items_closes_cleanly() {
        let (addr, handle) = start();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Announce 2 items but hang up after the header.
            stream.write_all(b"BATCH INGEST 2\n").unwrap();
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 0, "a truncated batch ingests nothing");
    }
}
