//! The `serve` daemon: a [`TcpListener`] loop around a [`PatternIndex`].
//!
//! Deliberately dependency-free (no async runtime — the build environment
//! is offline, and blocking I/O is entirely adequate for a line-oriented
//! request/reply protocol whose unit of work is a kernel batch). Each
//! connection gets its own OS thread so an idle client never blocks the
//! others.
//!
//! There is **no server-side lock**: the index is internally sharded and
//! synchronised (see [`crate::index`]), so handler threads share it behind
//! a plain [`Arc`]. `QUERY`/`MQUERY` take shard *read* locks and run
//! concurrently with each other; `INGEST`/`BATCH INGEST` write-lock only
//! the shard that owns each new entry, so writers never stall queries on
//! the other shards. Within a query the index additionally fans the
//! kernel batch out across scoped threads, which is where the actual CPU
//! time goes.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use kastio_obs::{Histogram, SlowLog, StripedHistogram};
use kastio_quota::{Account, MemoryQuota};

use kastio_trace::wal::WalRecord;

use crate::fault::{crash_point, CRASH_AFTER_ACK};
use crate::index::{IngestError, PatternIndex, QueryTimings};
use crate::persist::save_index_wal;
use crate::protocol::{
    parse_batch_ingest_item, parse_request, render_hello_reply, render_hello_unsupported,
    render_metrics_reply, render_mquery_reply, render_query_reply, render_slowlog_get,
    render_slowlog_len, render_slowlog_reset, render_stats_reply, render_trace_line,
    MetricsSnapshot, Request, SlowlogCmd, PROTOCOL_VERSION,
};
use crate::wal::WalManager;

/// Per-verb histogram slots, in [`MetricsSnapshot::verb_counts`] order.
const VERB_NAMES: [&str; 10] = [
    "hello",
    "ingest",
    "batch_ingest",
    "query",
    "mquery",
    "stats",
    "save",
    "shutdown",
    "metrics",
    "slowlog",
];

/// Pipeline stage histogram slots, in request order. `parse` covers
/// request-line parsing (plus item-line reads for the batched forms);
/// `prefilter`/`cache`/`kernel` come from the index's [`QueryTimings`];
/// `reply` is the reply write + flush.
const STAGE_NAMES: [&str; 5] = ["parse", "prefilter", "cache", "kernel", "reply"];

const STAGE_PARSE: usize = 0;
const STAGE_PREFILTER: usize = 1;
const STAGE_CACHE: usize = 2;
const STAGE_KERNEL: usize = 3;
const STAGE_REPLY: usize = 4;

/// The histogram slot a parsed request records into.
fn verb_slot(request: &Request) -> usize {
    match request {
        Request::Hello { .. } => 0,
        Request::Ingest { .. } => 1,
        Request::BatchIngest { .. } => 2,
        Request::Query { .. } => 3,
        Request::MultiQuery { .. } => 4,
        Request::Stats => 5,
        Request::Save => 6,
        Request::Shutdown => 7,
        Request::Metrics => 8,
        Request::Slowlog(_) => 9,
    }
}

/// The slow-log presentation of a request: its wire verb (space-free, so
/// `SLOW` lines stay token-aligned) and a compact argument summary.
fn request_summary(request: &Request) -> (&'static str, String) {
    match request {
        Request::Hello { version, .. } => ("HELLO", format!("proto={version}")),
        Request::Ingest { label, trace } => {
            ("INGEST", format!("label={label},ops={}", trace.len()))
        }
        Request::BatchIngest { count } => ("BATCH_INGEST", format!("count={count}")),
        Request::Query { k, trace, .. } => ("QUERY", format!("k={k},ops={}", trace.len())),
        Request::MultiQuery { k, count, .. } => ("MQUERY", format!("k={k},count={count}")),
        Request::Stats => ("STATS", String::new()),
        Request::Metrics => ("METRICS", String::new()),
        Request::Slowlog(SlowlogCmd::Get) => ("SLOWLOG", "GET".to_string()),
        Request::Slowlog(SlowlogCmd::Reset) => ("SLOWLOG", "RESET".to_string()),
        Request::Slowlog(SlowlogCmd::Len) => ("SLOWLOG", "LEN".to_string()),
        Request::Save => ("SAVE", String::new()),
        Request::Shutdown => ("SHUTDOWN", String::new()),
    }
}

/// Live connection/request counters of a running daemon, shared by every
/// handler thread and reported in the `STATS` reply.
///
/// Counters are plain relaxed atomics: they are observability data with
/// no ordering relationship to the index's own synchronisation, so the
/// cheapest increment is the right one. Semantics: `requests` counts
/// every non-blank request line received (parsed or not); the per-verb
/// counters count *successfully parsed* requests (a batched form counts
/// once, on its header); `errors` counts `ERR` replies sent, whatever
/// their cause (parse failure, bad batch item, unsupported `HELLO`,
/// failed save, over-long line, memory shed). The governance counters
/// count load deliberately refused: `shed_memory` is `ERR busy
/// reason=memory` replies (each one a client-visible shed, so the two
/// tallies match exactly), `shed_connections` is connections refused at
/// the accept loop with `ERR busy reason=connections`, and `timeouts` is
/// connections closed by the `--idle-timeout-secs` read deadline.
///
/// Latency is recorded into [`StripedHistogram`]s — one per verb for
/// total request latency, one per pipeline stage — so concurrent handler
/// threads rarely contend; `METRICS` and `STATS` merge the stripes into
/// point-in-time [`Histogram`] snapshots.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    /// `ERR busy reason=memory` replies sent (ingest admission or
    /// request-buffer admission refused).
    shed_memory: AtomicU64,
    /// Connections refused at the accept loop (`--max-connections`).
    shed_connections: AtomicU64,
    /// Connections closed by the idle-read deadline.
    timeouts: AtomicU64,
    verbs: [AtomicU64; VERB_NAMES.len()],
    /// Per-verb request latency (read → reply flushed), nanoseconds.
    verb_latency: [StripedHistogram; VERB_NAMES.len()],
    /// Per-stage latency across all requests, nanoseconds.
    stage_latency: [StripedHistogram; STAGE_NAMES.len()],
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        ServerMetrics {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed_memory: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            verbs: std::array::from_fn(|_| AtomicU64::new(0)),
            verb_latency: std::array::from_fn(|_| StripedHistogram::new()),
            stage_latency: std::array::from_fn(|_| StripedHistogram::new()),
        }
    }

    fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one received request line; `parsed` selects the per-verb
    /// counter (`None` for a line that failed to parse).
    fn record_request(&self, parsed: Option<&Request>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(request) = parsed {
            self.verbs[verb_slot(request)].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    fn record_shed_memory(&self) {
        self.shed_memory.fetch_add(1, Ordering::Relaxed);
    }

    fn record_shed_connection(&self) {
        self.shed_connections.fetch_add(1, Ordering::Relaxed);
    }

    fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed request's total latency into its verb's
    /// histogram.
    fn record_latency(&self, slot: usize, total_ns: u64) {
        self.verb_latency[slot].record(total_ns);
    }

    /// Records one pipeline stage span.
    fn record_stage(&self, stage: usize, ns: u64) {
        self.stage_latency[stage].record(ns);
    }

    /// Microseconds since the listener was bound — the slow log's
    /// timestamp base.
    fn uptime_micros(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Merged per-verb latency histograms for verbs with at least one
    /// sample, in documentation order.
    pub fn verb_latency_snapshots(&self) -> Vec<(&'static str, Histogram)> {
        VERB_NAMES
            .iter()
            .zip(&self.verb_latency)
            .filter(|(_, striped)| striped.count() > 0)
            .map(|(name, striped)| (*name, striped.snapshot()))
            .collect()
    }

    /// Merged per-stage latency histograms for stages with at least one
    /// sample, in pipeline order.
    pub fn stage_latency_snapshots(&self) -> Vec<(&'static str, Histogram)> {
        STAGE_NAMES
            .iter()
            .zip(&self.stage_latency)
            .filter(|(_, striped)| striped.count() > 0)
            .map(|(name, striped)| (*name, striped.snapshot()))
            .collect()
    }

    /// Per-verb `[p50, p95, p99]` total-latency quantiles in
    /// microseconds, for verbs with at least one sample — the `STATS`
    /// latency block.
    pub fn latency_quantiles(&self) -> Vec<(&'static str, [u64; 3])> {
        self.verb_latency_snapshots()
            .into_iter()
            .map(|(name, histogram)| {
                let us = |p: f64| histogram.percentile(p) / 1_000;
                (name, [us(50.0), us(95.0), us(99.0)])
            })
            .collect()
    }

    /// A point-in-time copy of every counter, for rendering or testing.
    /// The memory gauges (`mem_*`) are zero here — they live on the
    /// [`MemoryQuota`], overlaid by
    /// [`ServerMetrics::snapshot_with_quota`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let verb = |slot: usize| self.verbs[slot].load(Ordering::Relaxed);
        MetricsSnapshot {
            uptime_secs: self.started.elapsed().as_secs(),
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed_memory: self.shed_memory.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            hello: verb(0),
            ingest: verb(1),
            batch_ingest: verb(2),
            query: verb(3),
            mquery: verb(4),
            stats: verb(5),
            save: verb(6),
            shutdown: verb(7),
            metrics: verb(8),
            slowlog: verb(9),
            ..MetricsSnapshot::default()
        }
    }

    /// [`ServerMetrics::snapshot`] with the memory-governance gauges of
    /// the daemon's [`MemoryQuota`] overlaid — the form `STATS` and
    /// `METRICS` report.
    pub fn snapshot_with_quota(&self, quota: &MemoryQuota) -> MetricsSnapshot {
        let mut snapshot = self.snapshot();
        snapshot.mem_used_bytes = quota.used();
        snapshot.mem_limit_bytes = quota.limit().unwrap_or(0);
        snapshot.mem_reclaims = quota.reclaims();
        snapshot
    }
}

/// What handling one connection concluded.
enum Disposition {
    /// The client went away; accept the next connection.
    ClientDone,
    /// A `SHUTDOWN` request was honoured; stop the server.
    Shutdown,
}

/// A running (not yet serving) daemon: a bound listener plus the index it
/// will serve.
///
/// Binding is separated from serving so callers can learn the actual
/// address before the blocking accept loop starts — essential with an
/// ephemeral port (`:0`), which is how the integration tests and the
/// in-process example run.
///
/// # Examples
///
/// ```no_run
/// use kastio_index::{IndexOptions, PatternIndex, Server};
///
/// # fn main() -> std::io::Result<()> {
/// let index = PatternIndex::new(IndexOptions { shards: 4, ..IndexOptions::default() });
/// let server = Server::bind("127.0.0.1:0", index)?;
/// println!("listening on {}", server.local_addr()?);
/// let _index_back = server.serve()?; // blocks until SHUTDOWN
/// # Ok(())
/// # }
/// ```
pub struct Server {
    listener: TcpListener,
    index: Arc<PatternIndex>,
    stop: Arc<AtomicBool>,
    save_dir: Option<PathBuf>,
    wal: Option<Arc<WalManager>>,
    metrics: Arc<ServerMetrics>,
    slow_log: Arc<SlowLog>,
    /// The daemon's memory budget (unlimited by default). Shared with
    /// the index once [`Server::with_memory_limit`] attaches a limit.
    quota: MemoryQuota,
    max_connections: usize,
    idle_timeout: Option<Duration>,
}

/// Default `--max-connections`: generous enough that only a runaway
/// client fleet (or a fd leak) ever hits it, small enough that the
/// thread-per-connection model cannot be driven into thread exhaustion.
pub const DEFAULT_MAX_CONNECTIONS: usize = 1024;

/// A clonable handle that stops a running [`Server::serve`] loop from
/// another thread — the signal monitor uses one to turn `SIGTERM` into
/// the same clean shutdown a `SHUTDOWN` request performs (handlers
/// joined, corpus intact and saveable).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: raises the stop flag and nudges the accept loop
    /// awake with a throwaway connection so it observes the flag.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds a listener on `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port) around the given index.
    ///
    /// # Errors
    ///
    /// Propagates the [`TcpListener::bind`] failure.
    pub fn bind(addr: &str, index: PatternIndex) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            index: Arc::new(index),
            stop: Arc::new(AtomicBool::new(false)),
            save_dir: None,
            wal: None,
            metrics: Arc::new(ServerMetrics::new()),
            slow_log: Arc::new(SlowLog::disabled()),
            quota: MemoryQuota::unlimited(),
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout: None,
        })
    }

    /// Attaches a memory budget of `limit` bytes (`None`: unlimited, the
    /// default). With a limit, the corpus and the kernel cache are
    /// charged against it (the cache doubles as the reclaim target), and
    /// requests that would grow past it are shed with
    /// `ERR busy reason=memory` — the connection stays open, the daemon
    /// stays up, and the shed is counted in `STATS` / `METRICS`.
    #[must_use]
    pub fn with_memory_limit(mut self, limit: Option<u64>) -> Server {
        self.quota = MemoryQuota::new(limit);
        if limit.is_some() {
            self.index.attach_quota(&self.quota);
        }
        self
    }

    /// Caps concurrently served connections (default
    /// [`DEFAULT_MAX_CONNECTIONS`]). Past the cap the accept loop sheds:
    /// it replies `ERR busy reason=connections` and closes the socket
    /// *without* spawning a handler thread, so overload cannot exhaust
    /// threads or memory. Clamped to at least 1.
    #[must_use]
    pub fn with_max_connections(mut self, max: usize) -> Server {
        self.max_connections = max.max(1);
        self
    }

    /// Arms a per-connection read deadline (`None`, the default, waits
    /// forever). A connection idle past the deadline is closed and
    /// counted in the `timeouts` counter, so abandoned sockets release
    /// their threads and registry slots.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Option<Duration>) -> Server {
        self.idle_timeout = timeout;
        self
    }

    /// The daemon's memory quota (shared, clonable handle) — lets tests
    /// and embedding processes observe `used()` while serving.
    pub fn quota(&self) -> MemoryQuota {
        self.quota.clone()
    }

    /// Configures the slow-query log threshold: requests whose total
    /// latency reaches `threshold_micros` are recorded (newest
    /// [`SlowLog::DEFAULT_CAPACITY`] kept) and exposed through the
    /// `SLOWLOG` verb. `None` (the default) disables recording — the
    /// verb still answers, with an empty log. Threshold 0 logs every
    /// request, mirroring Redis's `slowlog-log-slower-than 0` test hook.
    #[must_use]
    pub fn with_slow_log(mut self, threshold_micros: Option<u64>) -> Server {
        self.slow_log = Arc::new(SlowLog::new(SlowLog::DEFAULT_CAPACITY, threshold_micros));
        self
    }

    /// Configures the snapshot directory: `SAVE` requests write there,
    /// and `SHUTDOWN` snapshots there *before* replying, so the
    /// requesting client sees the save outcome (`OK bye saved=…` or
    /// `ERR save failed: …`) instead of a silent post-reply failure.
    #[must_use]
    pub fn with_save_dir(mut self, dir: Option<PathBuf>) -> Server {
        self.save_dir = dir;
        self
    }

    /// Attaches a write-ahead log: every `INGEST` / `BATCH INGEST` is
    /// appended and group-commit-fsync'd *before* its `OK` reply is
    /// written (ack-after-fsync), `SAVE` compacts the log against the
    /// snapshot generation (and says so: `… wal=truncated`), and the
    /// `STATS` / `METRICS` wal counters go live. `None` (the default)
    /// keeps the snapshot-only durability story and every reply byte
    /// unchanged.
    #[must_use]
    pub fn with_wal(mut self, wal: Option<Arc<WalManager>>) -> Server {
        self.wal = wal;
        self
    }

    /// The served index, shared. Lets a periodic
    /// [`crate::persist::Snapshotter`] or a signal monitor observe and
    /// snapshot the corpus while [`Server::serve`] blocks.
    pub fn index(&self) -> Arc<PatternIndex> {
        Arc::clone(&self.index)
    }

    /// The daemon's connection/request counters, shared. Lets a caller
    /// (tests, an embedding process) observe traffic while
    /// [`Server::serve`] blocks.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that stops the serve loop from another thread.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure (the handle needs the
    /// bound address for its wake-up nudge).
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle { stop: Arc::clone(&self.stop), addr: self.local_addr()? })
    }

    /// The address the listener actually bound.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections — each on its own thread — until a
    /// client sends `SHUTDOWN` (or a [`ShutdownHandle`] fires), then
    /// joins the handlers and returns the shared index (so the caller can
    /// persist it or inspect its [`crate::index::SnapshotStatus`]).
    ///
    /// Accept errors are treated as transient (EMFILE under fd pressure,
    /// ECONNABORTED, …): the loop backs off briefly and retries, so the
    /// in-memory corpus is never lost to a hiccup. Only a long unbroken
    /// run of failures abandons accepting — and even then the index is
    /// returned intact so the caller's save path still runs.
    ///
    /// # Errors
    ///
    /// Currently none after a successful bind; the `io::Result` is kept
    /// for callers that treat serving uniformly with binding.
    pub fn serve(self) -> io::Result<Arc<PatternIndex>> {
        let addr = self.listener.local_addr()?;
        let index = self.index;
        let stop = self.stop;
        let metrics = self.metrics;
        let slow_log = self.slow_log;
        let save_dir = self.save_dir.map(Arc::new);
        let wal = self.wal;
        let quota = self.quota;
        // One account for every connection's in-flight request buffers:
        // admission is against the *root* budget anyway, and a shared
        // account keeps the STATS story simple.
        let buffers = quota.account("buffers");
        let (max_connections, idle_timeout) = (self.max_connections, self.idle_timeout);
        // Registry of live client sockets, keyed by connection id. Each
        // handler removes its own entry on exit, so finished connections
        // release their file descriptors immediately; whatever is left at
        // shutdown is force-closed below to wake blocked readers.
        let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut consecutive_errors: u32 = 0;
        for (connection_id, stream) in (0_u64..).zip(self.listener.incoming()) {
            let stream = match stream {
                Ok(stream) => {
                    consecutive_errors = 0;
                    stream
                }
                Err(_) if stop.load(Ordering::SeqCst) => break,
                Err(_) => {
                    consecutive_errors += 1;
                    if consecutive_errors > 100 {
                        break; // listener looks permanently broken
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if stop.load(Ordering::SeqCst) {
                break; // woken by the shutdown nudge below
            }
            // Reap finished handlers so the handle list tracks live
            // connections, not total connections served.
            let (done, live): (Vec<_>, Vec<_>) =
                handlers.into_iter().partition(|handler| handler.is_finished());
            for handler in done {
                let _ = handler.join();
            }
            handlers = live;

            // Connection admission: past the cap, shed loudly — one
            // readable reply line, then close — instead of spawning a
            // thread the box cannot afford. The write is best-effort (a
            // peer that already hung up gets nothing, which is fine).
            if handlers.len() >= max_connections {
                metrics.record_shed_connection();
                let mut stream = stream;
                let _ = stream.write_all(b"ERR busy reason=connections\n");
                let _ = stream.flush();
                continue;
            }
            if let Some(timeout) = idle_timeout {
                // Best-effort: a socket that refuses the deadline just
                // keeps blocking reads, as without the flag.
                let _ = stream.set_read_timeout(Some(timeout));
            }

            match stream.try_clone() {
                Ok(clone) => {
                    lock_registry(&connections).insert(connection_id, clone);
                }
                // Without a registered clone the socket could not be
                // force-closed at shutdown and its handler would block
                // serve() in join() forever — refuse the connection
                // instead (try_clone only fails under fd exhaustion).
                Err(_) => continue,
            }
            metrics.record_connection();
            let (index, stop, connections) =
                (Arc::clone(&index), Arc::clone(&stop), Arc::clone(&connections));
            let (save_dir, metrics) = (save_dir.clone(), Arc::clone(&metrics));
            let (slow_log, wal) = (Arc::clone(&slow_log), wal.clone());
            let (quota, buffers) = (quota.clone(), buffers.clone());
            handlers.push(std::thread::spawn(move || {
                let disposition = handle_connection(
                    stream,
                    &index,
                    save_dir.as_deref().map(PathBuf::as_path),
                    wal.as_deref(),
                    &metrics,
                    &slow_log,
                    &quota,
                    &buffers,
                );
                lock_registry(&connections).remove(&connection_id);
                if let Ok(Disposition::Shutdown) = disposition {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it observes the flag.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        // Close the remaining client sockets so handlers blocked in
        // read_line wake up and exit, making the joins below finite.
        for (_, connection) in lock_registry(&connections).drain() {
            let _ = connection.shutdown(std::net::Shutdown::Both);
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(index)
    }
}

fn lock_registry(
    connections: &Mutex<HashMap<u64, TcpStream>>,
) -> MutexGuard<'_, HashMap<u64, TcpStream>> {
    connections.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Upper bound on one request (or batch item) line: 1 MiB. A client
/// streaming data with no newline would otherwise grow the line buffer
/// without limit and OOM the daemon; 1 MiB comfortably fits any
/// realistic inline trace (a trace line of `n` operations is well under
/// 16 bytes per op). An over-long line is answered with
/// `ERR line too long` and *drained to its newline* — the connection
/// stays framed and usable.
const MAX_REQUEST_LINE_BYTES: u64 = 1 << 20;

/// What reading one request (or batch item) line produced.
enum Line {
    /// A complete newline-terminated line is in the buffer.
    Full,
    /// The peer closed the connection.
    Eof,
    /// The line hit [`MAX_REQUEST_LINE_BYTES`] without a newline; the
    /// remainder (up to the next newline) is still unread — drain it
    /// with [`drain_line`] to keep the connection framed.
    TooLong,
}

fn read_request_line<R: BufRead>(reader: &mut R, line: &mut String) -> io::Result<Line> {
    line.clear();
    if reader.by_ref().take(MAX_REQUEST_LINE_BYTES).read_line(line)? == 0 {
        return Ok(Line::Eof);
    }
    if line.len() as u64 >= MAX_REQUEST_LINE_BYTES && !line.ends_with('\n') {
        return Ok(Line::TooLong);
    }
    Ok(Line::Full)
}

/// Discards the unread remainder of an over-long line — everything up to
/// and including the next newline — without buffering it, so the
/// connection can keep serving requests after an `ERR line too long`.
/// Returns `false` when the stream ends first (nothing left to serve).
fn drain_line<R: BufRead>(reader: &mut R) -> io::Result<bool> {
    loop {
        let buffered = reader.fill_buf()?;
        if buffered.is_empty() {
            return Ok(false); // EOF mid-line
        }
        match buffered.iter().position(|&byte| byte == b'\n') {
            Some(at) => {
                reader.consume(at + 1);
                return Ok(true);
            }
            None => {
                let len = buffered.len();
                reader.consume(len);
            }
        }
    }
}

/// Whether a read error is the per-connection idle deadline firing
/// (`WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(error: &io::Error) -> bool {
    matches!(error.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Bytes of one in-flight batched request charged against the `buffers`
/// account, released when the request's reply has been rendered (drop).
/// Admission is all-or-nothing per line: a line that no longer fits
/// sheds the whole request.
struct BufferCharge<'a> {
    account: &'a Account,
    bytes: u64,
}

impl<'a> BufferCharge<'a> {
    fn new(account: &'a Account) -> BufferCharge<'a> {
        BufferCharge { account, bytes: 0 }
    }

    /// Tries to admit `bytes` more buffered request bytes; on refusal
    /// (budget exhausted even after reclaim) nothing is charged.
    #[must_use]
    fn add(&mut self, bytes: u64) -> bool {
        if self.account.try_charge(bytes) {
            self.bytes += bytes;
            true
        } else {
            false
        }
    }

    /// Releases everything charged so far (the request was shed).
    fn release_all(&mut self) {
        self.account.release(self.bytes);
        self.bytes = 0;
    }
}

impl Drop for BufferCharge<'_> {
    fn drop(&mut self) {
        self.account.release(self.bytes);
    }
}

/// Nanoseconds elapsed since `start`, saturating.
fn span_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Serves one client: one reply per request until EOF or `SHUTDOWN`. For
/// the batched forms (`BATCH INGEST`, `MQUERY`) the announced item lines
/// are consumed — even when an item is malformed — before the single
/// reply, so one bad item never desyncs the connection's framing.
/// `save_dir` is the snapshot target for `SAVE` (and the pre-reply save
/// of `SHUTDOWN`); without one, `SAVE` is answered with an `ERR`. With a
/// `wal`, ingest replies are written only after the covering fsync — an
/// `OK` a client reads is a durability promise, proven by
/// `tests/wal_recovery.rs` against `kill -9` at injected crash points.
///
/// Every request is timed from the end of its request-line read to the
/// reply flush; the total lands in the verb's latency histogram, the
/// stage spans in the per-stage histograms, and — when the slow-log
/// threshold is crossed — a summary in the [`SlowLog`].
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    index: &PatternIndex,
    save_dir: Option<&Path>,
    wal: Option<&WalManager>,
    metrics: &ServerMetrics,
    slow_log: &SlowLog,
    quota: &MemoryQuota,
    buffers: &Account,
) -> io::Result<Disposition> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        let status = match read_request_line(&mut reader, &mut line) {
            Ok(status) => status,
            // The idle deadline fired between requests: count it and
            // close cleanly — an abandoned socket is not an I/O error.
            Err(error) if is_timeout(&error) => {
                metrics.record_timeout();
                return Ok(Disposition::ClientDone);
            }
            Err(error) => return Err(error),
        };
        match status {
            Line::Eof => return Ok(Disposition::ClientDone),
            Line::TooLong => {
                metrics.record_error();
                writer.write_all(b"ERR line too long\n")?;
                writer.flush()?;
                // Skip to the next newline: the over-long line is the
                // client's mistake, not a reason to hang up on it.
                if !drain_line(&mut reader)? {
                    return Ok(Disposition::ClientDone);
                }
                continue;
            }
            Line::Full => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let request = parse_request(&line);
        metrics.record_request(request.as_ref().ok());
        let slot = request.as_ref().ok().map(verb_slot);
        // The argument summary allocates, so it is only built when the
        // slow log could actually keep it.
        let summary =
            slow_log.threshold_micros().and_then(|_| request.as_ref().ok().map(request_summary));
        let mut parse_ns = span_ns(started);
        let mut query_timings = QueryTimings::default();
        let mut ran_query = false;
        let mut timed = false;
        let mut shutting_down = false;
        let mut reply = match request {
            Err(message) => format!("ERR {message}\n"),
            Ok(Request::Hello { version, client: _ }) => {
                // Version negotiation: the handshake succeeds only on an
                // exact match today (there is one version). Every other
                // verb keeps working without a HELLO, so old clients are
                // unaffected.
                if version == PROTOCOL_VERSION {
                    render_hello_reply()
                } else {
                    render_hello_unsupported(version)
                }
            }
            Ok(Request::Ingest { label, trace }) => {
                // `ingest_auto` consumes the label and trace, but the WAL
                // record needs them too — and only exists on the success
                // path, so the clone is taken up front.
                let journal = wal.map(|wal| (wal, label.clone(), trace.clone()));
                match index.ingest_auto(label, trace) {
                    Ok(id) => {
                        let durable = journal.map_or(Ok(()), |(wal, label, trace)| {
                            wal_commit(
                                wal,
                                vec![WalRecord {
                                    id: id.0,
                                    name: format!("e{}", id.0),
                                    label,
                                    trace,
                                }],
                            )
                        });
                        match durable {
                            Ok(()) => {
                                format!("OK id={} name=e{} entries={}\n", id.0, id.0, index.len())
                            }
                            Err(e) => format!("ERR wal: {e}\n"),
                        }
                    }
                    Err(e) => format!("ERR {e}\n"),
                }
            }
            Ok(Request::BatchIngest { count }) => {
                let items_started = Instant::now();
                let mut charge = BufferCharge::new(buffers);
                let items =
                    read_items(&mut reader, count, metrics, &mut charge, parse_batch_ingest_item)?;
                parse_ns += span_ns(items_started);
                match items {
                    Items::Hangup => return Ok(Disposition::ClientDone),
                    Items::Bad(message) => message,
                    Items::Parsed(items) => batch_ingest_reply(index, count, items, wal),
                }
            }
            Ok(Request::Query { k, trace, timed: t }) => {
                let result = index.query(&trace, k);
                query_timings = result.timings;
                ran_query = true;
                timed = t;
                render_query_reply(&result)
            }
            Ok(Request::MultiQuery { k, count, timed: t }) => {
                let items_started = Instant::now();
                let mut charge = BufferCharge::new(buffers);
                let items = read_items(&mut reader, count, metrics, &mut charge, |item| {
                    crate::protocol::decode_trace_inline(item.trim())
                })?;
                parse_ns += span_ns(items_started);
                match items {
                    Items::Hangup => return Ok(Disposition::ClientDone),
                    Items::Bad(message) => message,
                    Items::Parsed(traces) => {
                        let results = index.query_batch(&traces, k);
                        for result in &results {
                            query_timings.merge(&result.timings);
                        }
                        ran_query = true;
                        timed = t;
                        render_mquery_reply(&results)
                    }
                }
            }
            Ok(Request::Stats) => {
                // One shard-size snapshot, with `entries` derived from it:
                // a concurrent ingest between two separate scans could
                // otherwise make the reply violate the documented
                // invariant that the shard counts sum to `entries`.
                let shard_sizes = index.shard_sizes();
                let entries = shard_sizes.iter().sum();
                render_stats_reply(
                    entries,
                    index.cached_pairs(),
                    &shard_sizes,
                    &index.stats(),
                    index.generation(),
                    &snapshot_status_with_wal(index, wal),
                    &metrics.snapshot_with_quota(quota),
                    &metrics.latency_quantiles(),
                )
            }
            Ok(Request::Metrics) => render_metrics_reply(
                &metrics.snapshot_with_quota(quota),
                &metrics.verb_latency_snapshots(),
                &metrics.stage_latency_snapshots(),
                &snapshot_status_with_wal(index, wal),
                slow_log.len(),
            ),
            Ok(Request::Slowlog(SlowlogCmd::Get)) => render_slowlog_get(&slow_log.entries()),
            Ok(Request::Slowlog(SlowlogCmd::Len)) => render_slowlog_len(slow_log.len()),
            Ok(Request::Slowlog(SlowlogCmd::Reset)) => {
                slow_log.reset();
                render_slowlog_reset()
            }
            Ok(Request::Save) => match save_dir {
                None => "ERR no save directory (start the server with --save)\n".to_string(),
                Some(dir) => match save_index_wal(index, dir, wal) {
                    Ok(info) => {
                        // Under --wal a snapshot is a compaction point:
                        // the reply says the log was trimmed too, so a
                        // client (and the conformance suite) can tell the
                        // two durability modes apart on the wire.
                        let wal_note = if wal.is_some() { " wal=truncated" } else { "" };
                        format!(
                            "OK saved entries={} generation={}{wal_note}\n",
                            info.entries, info.generation
                        )
                    }
                    Err(e) => format!("ERR save failed: {e}\n"),
                },
            },
            Ok(Request::Shutdown) => {
                // Save *before* replying, so the client that requested
                // the shutdown learns whether the corpus actually made it
                // to disk. The server shuts down either way — the caller
                // of serve() re-checks the snapshot status and surfaces
                // the failure in its exit code.
                shutting_down = true;
                match save_dir {
                    None => "OK bye\n".to_string(),
                    Some(dir) => match save_index_wal(index, dir, wal) {
                        Ok(info) => format!(
                            "OK bye saved={} generation={}\n",
                            info.entries, info.generation
                        ),
                        Err(e) => format!("ERR save failed: {e} (shutting down anyway)\n"),
                    },
                }
            }
        };
        if reply.starts_with("ERR") {
            metrics.record_error();
        }
        // Every memory shed reply — whatever path produced it (ingest
        // admission, batch item, request buffers) — is counted here, so
        // the STATS tally equals the ERR busy replies clients observed.
        if reply.starts_with("ERR busy reason=memory") {
            metrics.record_shed_memory();
        }
        if timed && reply.ends_with("END\n") {
            // The reply-write span cannot be known before the reply is
            // written, so the inline TRACE total covers read → render;
            // `reply` still shows up in the stage histograms and the
            // slow log. Per-field flooring to µs keeps the rendered
            // stage sum at or under the rendered total.
            let trace_line = render_trace_line(
                span_ns(started),
                &[
                    ("parse", parse_ns),
                    ("prefilter", query_timings.prefilter_ns),
                    ("cache", query_timings.cache_ns),
                    ("kernel", query_timings.kernel_ns),
                ],
            );
            reply.insert_str(reply.len() - "END\n".len(), &trace_line);
        }
        let write_started = Instant::now();
        writer.write_all(reply.as_bytes())?;
        writer.flush()?;
        if reply.starts_with("OK")
            && matches!(slot.map(|s| VERB_NAMES[s]), Some("ingest" | "batch_ingest"))
        {
            // Fault injection: with ack-after-fsync ordering, a crash
            // *after* the ack has left the socket must already find the
            // record durable — tests/wal_recovery.rs aborts here and
            // asserts exactly that.
            crash_point(CRASH_AFTER_ACK);
        }
        let reply_ns = span_ns(write_started);
        let total_ns = span_ns(started);
        metrics.record_stage(STAGE_PARSE, parse_ns);
        if ran_query {
            metrics.record_stage(STAGE_PREFILTER, query_timings.prefilter_ns);
            metrics.record_stage(STAGE_CACHE, query_timings.cache_ns);
            metrics.record_stage(STAGE_KERNEL, query_timings.kernel_ns);
        }
        metrics.record_stage(STAGE_REPLY, reply_ns);
        if let Some(slot) = slot {
            metrics.record_latency(slot, total_ns);
        }
        if let Some((verb, args)) = summary {
            let mut stages = vec![("parse", parse_ns / 1_000)];
            if ran_query {
                stages.push(("prefilter", query_timings.prefilter_ns / 1_000));
                stages.push(("cache", query_timings.cache_ns / 1_000));
                stages.push(("kernel", query_timings.kernel_ns / 1_000));
            }
            stages.push(("reply", reply_ns / 1_000));
            slow_log.record(metrics.uptime_micros(), verb, args, total_ns / 1_000, stages);
        }
        if shutting_down {
            return Ok(Disposition::Shutdown);
        }
    }
}

/// Applies a fully parsed `BATCH INGEST` item list. Labels were validated
/// line by line during parsing; the remaining mid-batch failure is memory
/// admission — with a budget attached, the first item that no longer fits
/// sheds the rest of the batch with `ERR busy reason=memory` (the
/// already-applied prefix is kept, as the reply says, and logged to the
/// WAL so later acked ingests never sit past an id gap at replay).
fn batch_ingest_reply(
    index: &PatternIndex,
    count: usize,
    items: Vec<(String, kastio_trace::Trace)>,
    wal: Option<&WalManager>,
) -> String {
    let mut records = Vec::new();
    for (i, (label, trace)) in items.into_iter().enumerate() {
        let journal = wal.map(|_| (label.clone(), trace.clone()));
        match index.ingest_auto(label, trace) {
            Ok(id) => {
                if let Some((label, trace)) = journal {
                    records.push(WalRecord { id: id.0, name: format!("e{}", id.0), label, trace });
                }
            }
            Err(e) => {
                // The applied prefix is in memory either way; with a WAL
                // it must also be logged, or a *later* acked ingest would
                // sit past an id gap and be dropped at replay. The ERR
                // still means this batch as a whole was not acked.
                if let Some(wal) = wal {
                    let _ = wal_commit(wal, records);
                }
                // A memory shed keeps the canonical busy prefix so
                // clients (and the shed counter) recognise it.
                return match e {
                    IngestError::OverMemoryBudget => {
                        format!(
                            "ERR busy reason=memory (first {i} of {count} items were ingested)\n"
                        )
                    }
                    e => {
                        format!("ERR item {}/{count}: {e} (previous items were ingested)\n", i + 1)
                    }
                };
            }
        }
    }
    if let Some(wal) = wal {
        if let Err(e) = wal_commit(wal, records) {
            return format!("ERR wal: {e}\n");
        }
    }
    format!("OK batch={count} entries={}\n", index.len())
}

/// Appends `records` to the log and blocks until one group-commit fsync
/// covers them all — the gate an ingest reply waits behind.
fn wal_commit(wal: &WalManager, records: Vec<WalRecord>) -> io::Result<()> {
    let mut last = 0;
    for record in &records {
        last = wal.append(record)?;
    }
    wal.wait_durable(last)
}

/// The index's snapshot status with the live WAL counters overlaid (when
/// a WAL is attached) — the form `STATS` / `METRICS` report.
fn snapshot_status_with_wal(
    index: &PatternIndex,
    wal: Option<&WalManager>,
) -> crate::index::SnapshotStatus {
    let mut status = index.snapshot_status();
    if let Some(wal) = wal {
        wal.overlay(&mut status);
    }
    status
}

/// Outcome of reading a batch's item lines.
enum Items<T> {
    /// All items read and parsed.
    Parsed(Vec<T>),
    /// An item failed to parse, ran over a size cap or was shed by memory
    /// admission; the `ERR` reply to send (every announced line was still
    /// consumed or drained, so the connection stays framed).
    Bad(String),
    /// EOF (or the idle deadline) mid-batch; hang up.
    Hangup,
}

/// Upper bound on the *cumulative* item bytes of one batched request.
/// The per-line cap alone would let a 4096-item batch buffer gigabytes of
/// parsed items before replying; this keeps a whole `BATCH INGEST` /
/// `MQUERY` within a 16 MiB envelope even without a `--max-memory-bytes`
/// budget (the remaining announced lines are still consumed — without
/// being stored — so the connection stays framed).
const MAX_BATCH_TOTAL_BYTES: u64 = 16 << 20;

/// Reads the `count` announced item lines of a batched request. Every
/// accepted line's bytes are first admitted against the memory budget
/// through `charge`; the first line that no longer fits sheds the whole
/// request with `ERR busy reason=memory` (buffered items and their
/// charges are dropped), while the remaining announced lines are still
/// consumed so the connection stays framed.
fn read_items<R: BufRead, T>(
    reader: &mut R,
    count: usize,
    metrics: &ServerMetrics,
    charge: &mut BufferCharge<'_>,
    parse: impl Fn(&str) -> Result<T, String>,
) -> io::Result<Items<T>> {
    let mut items: Vec<T> = Vec::new();
    let mut first_error: Option<String> = None;
    let mut total_bytes: u64 = 0;
    let mut line = String::new();
    for i in 1..=count {
        let status = match read_request_line(reader, &mut line) {
            Ok(status) => status,
            Err(error) if is_timeout(&error) => {
                metrics.record_timeout();
                return Ok(Items::Hangup);
            }
            Err(error) => return Err(error),
        };
        match status {
            Line::Eof => return Ok(Items::Hangup),
            Line::TooLong => {
                // Drain to the newline and keep the connection framed;
                // the batch as a whole is refused.
                if first_error.is_none() {
                    items = Vec::new();
                    charge.release_all();
                    first_error = Some("ERR line too long\n".to_string());
                }
                if !drain_line(reader)? {
                    return Ok(Items::Hangup);
                }
                continue;
            }
            Line::Full => {}
        }
        if first_error.is_some() {
            continue; // keep consuming announced lines to stay framed
        }
        total_bytes += line.len() as u64;
        if total_bytes > MAX_BATCH_TOTAL_BYTES {
            items = Vec::new(); // release what was buffered
            charge.release_all();
            first_error = Some(format!("ERR batch exceeds {MAX_BATCH_TOTAL_BYTES} total bytes\n"));
            continue;
        }
        if !charge.add(line.len() as u64) {
            items = Vec::new();
            charge.release_all();
            first_error = Some("ERR busy reason=memory\n".to_string());
            continue;
        }
        match parse(&line) {
            Ok(item) => items.push(item),
            Err(message) => first_error = Some(format!("ERR item {i}/{count}: {message}\n")),
        }
    }
    Ok(match first_error {
        Some(message) => Items::Bad(message),
        None => Items::Parsed(items),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexOptions;

    fn start_with(opts: IndexOptions) -> (SocketAddr, std::thread::JoinHandle<Arc<PatternIndex>>) {
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(opts)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        (addr, handle)
    }

    fn start() -> (SocketAddr, std::thread::JoinHandle<Arc<PatternIndex>>) {
        start_with(IndexOptions::default())
    }

    /// Like [`start_with`] but lets the test apply governance builders
    /// (`with_memory_limit`, `with_max_connections`, ...) before serving.
    fn start_configured(
        opts: IndexOptions,
        configure: impl FnOnce(Server) -> Server,
    ) -> (SocketAddr, std::thread::JoinHandle<Arc<PatternIndex>>) {
        let server = configure(Server::bind("127.0.0.1:0", PatternIndex::new(opts)).unwrap());
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        (addr, handle)
    }

    /// Extract `STAT <key> <value>` from a STATS reply.
    fn stat_value(stats: &str, key: &str) -> u64 {
        let prefix = format!("STAT {key} ");
        stats
            .lines()
            .find_map(|l| l.strip_prefix(&prefix))
            .unwrap_or_else(|| panic!("missing {key} in {stats}"))
            .parse()
            .unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
        stream.write_all(request.as_bytes()).unwrap();
        stream.flush().unwrap();
        // One outstanding request at a time, so a throwaway BufReader
        // cannot buffer past the reply it is framing.
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        crate::protocol::read_reply(&mut reader).expect("server replied")
    }

    #[test]
    fn ingest_query_stats_shutdown_lifecycle() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        let reply = roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        let reply = roundtrip(&mut stream, "INGEST r h0 read 8;h0 read 8\n");
        assert_eq!(reply, "OK id=1 name=e1 entries=2\n");

        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64;h0 write 64\n");
        assert!(reply.starts_with("OK matches=1 label=w\n"), "{reply}");
        assert!(reply.contains("MATCH 1 e0 w "), "{reply}");
        assert!(reply.ends_with("END\n"));

        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 2\n"), "{reply}");
        assert!(reply.contains("STAT shards 1\n"), "{reply}");
        assert!(reply.contains("STAT shard0_entries 2\n"), "{reply}");
        assert!(reply.contains("STAT queries 1\n"), "{reply}");

        let reply = roundtrip(&mut stream, "BOGUS\n");
        assert!(reply.starts_with("ERR unknown verb"), "{reply}");

        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 2, "server hands the corpus back on shutdown");
    }

    #[test]
    fn batch_ingest_and_mquery_lifecycle() {
        let (addr, handle) = start_with(IndexOptions { shards: 2, ..IndexOptions::default() });
        let mut stream = TcpStream::connect(addr).unwrap();

        let reply = roundtrip(
            &mut stream,
            "BATCH INGEST 3\nw h0 write 64;h0 write 64\nr h0 read 8;h0 read 8\nw h0 write 64\n",
        );
        assert_eq!(reply, "OK batch=3 entries=3\n");

        let reply = roundtrip(&mut stream, "MQUERY k=1 2\nh0 write 64;h0 write 64\nh0 read 8\n");
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK queries=2");
        assert_eq!(lines[1], "RESULT 1 matches=1 label=w");
        assert!(lines[2].starts_with("MATCH 1 e0 w "), "{reply}");
        assert_eq!(lines[3], "RESULT 2 matches=1 label=r");
        assert!(lines[4].starts_with("MATCH 1 e1 r "), "{reply}");
        assert_eq!(*lines.last().unwrap(), "END");

        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 3\n"), "{reply}");
        assert!(reply.contains("STAT shards 2\n"), "{reply}");
        assert!(reply.contains("STAT shard0_entries 2\n"), "{reply}");
        assert!(reply.contains("STAT shard1_entries 1\n"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 3);
        assert_eq!(index.shard_sizes(), vec![2, 1]);
    }

    #[test]
    fn bad_batch_item_keeps_the_connection_framed() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        // Item 2 is malformed; the server must consume item 3 anyway and
        // reject the whole batch without ingesting anything.
        let reply = roundtrip(
            &mut stream,
            "BATCH INGEST 3\nw h0 write 64\nbroken-no-trace\nw h0 write 32\n",
        );
        assert!(reply.starts_with("ERR item 2/3:"), "{reply}");

        // The connection is still usable and nothing was ingested.
        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 0\n"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn batch_cumulative_bytes_are_capped() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Twenty individually legal ~0.9 MiB items (each under the 1 MiB
        // per-line cap) that together cross the 16 MiB cumulative cap, so
        // the batch is rejected as a whole and nothing is ingested — but
        // the connection stays framed.
        let item = format!("w {}", "h0 write 64;".repeat(75_000));
        assert!(item.len() < 1 << 20, "item must stay under the line cap");
        let mut batch = String::from("BATCH INGEST 20\n");
        for _ in 0..20 {
            batch.push_str(&item);
            batch.push('\n');
        }
        let reply = roundtrip(&mut stream, &batch);
        assert!(reply.starts_with("ERR batch exceeds"), "{reply}");
        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 0\n"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_queries_share_the_index_without_a_global_lock() {
        let (addr, handle) = start_with(IndexOptions { shards: 4, ..IndexOptions::default() });
        let mut seed = TcpStream::connect(addr).unwrap();
        for i in 0..8 {
            let reply =
                roundtrip(&mut seed, &format!("INGEST w{i} h0 write {};h0 write {0}\n", 64 << i));
            assert!(reply.starts_with("OK id="), "{reply}");
        }
        let readers: Vec<_> = (0..4)
            .map(|r| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for i in 0..5 {
                        let bytes = 64 << ((r + i) % 8);
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        stream
                            .write_all(
                                format!("QUERY k=2 h0 write {bytes};h0 write {bytes}\n").as_bytes(),
                            )
                            .unwrap();
                        let reply = crate::protocol::read_reply(&mut reader).unwrap();
                        assert!(reply.starts_with("OK matches=2"), "{reply}");
                        assert!(reply.ends_with("END\n"), "{reply}");
                    }
                })
            })
            .collect();
        for reader in readers {
            reader.join().unwrap();
        }
        assert_eq!(roundtrip(&mut seed, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.stats().queries, 20);
    }

    #[test]
    fn idle_connection_does_not_block_other_clients() {
        let (addr, handle) = start();
        // An idle client holds its connection open the whole time.
        let idle = TcpStream::connect(addr).unwrap();
        let mut active = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut active, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        let reply = roundtrip(&mut active, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        // Shutdown must complete even though `idle` never disconnected.
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 1);
        drop(idle);
    }

    #[test]
    fn oversized_request_line_is_rejected_and_drained() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Stream 2 MiB — double the cap — before the newline. The server
        // must answer with a bounded error, drain the rest of the line,
        // and keep the connection framed for the next request.
        let mut line = vec![b'a'; 2 << 20];
        line.push(b'\n');
        stream.write_all(&line).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "ERR line too long\n");
        // Same connection, next request: fully usable.
        let reply = roundtrip(&mut stream, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn memory_pressure_sheds_ingests_but_keeps_serving() {
        let (addr, handle) =
            start_configured(IndexOptions::default(), |s| s.with_memory_limit(Some(4096)));
        let mut stream = TcpStream::connect(addr).unwrap();

        // A small ingest fits the 4 KiB budget.
        let reply = roundtrip(&mut stream, "INGEST small h0 write 64;h0 write 64\n");
        assert!(reply.starts_with("OK id=0"), "{reply}");

        // Each of these would add ~5 KiB of corpus; all three must be
        // shed with the busy error, and the connection must stay open.
        let fat = format!("INGEST fat{{}} {}\n", "h0 write 64;".repeat(100));
        let mut busy_seen = 0u64;
        for i in 0..3 {
            let reply = roundtrip(&mut stream, &fat.replace("{}", &i.to_string()));
            assert_eq!(reply, "ERR busy reason=memory\n");
            busy_seen += 1;
        }

        // A batch whose first item is over budget sheds the same way
        // (and counts once, like the single busy reply the client saw).
        let batch = format!("BATCH INGEST 1\nw {}\n", "h0 write 64;".repeat(100));
        let reply = roundtrip(&mut stream, &batch);
        assert!(reply.starts_with("ERR busy reason=memory"), "{reply}");
        busy_seen += 1;

        // Reads still work under pressure and the books balance: the shed
        // tally equals the busy replies the client observed, and usage
        // never exceeds the configured limit.
        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64;h0 write 64\n");
        assert!(reply.starts_with("OK matches=1"), "{reply}");
        let stats = roundtrip(&mut stream, "STATS\n");
        assert_eq!(stat_value(&stats, "shed_memory"), busy_seen);
        assert_eq!(stat_value(&stats, "mem_limit_bytes"), 4096);
        assert!(stat_value(&stats, "mem_used_bytes") <= 4096, "{stats}");
        assert_eq!(stat_value(&stats, "entries"), 1);

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn connection_admission_sheds_with_busy_reply() {
        let (addr, handle) =
            start_configured(IndexOptions::default(), |s| s.with_max_connections(1));
        let mut first = TcpStream::connect(addr).unwrap();
        // Roundtrip guarantees the first handler thread is registered
        // before the second connection races the accept loop.
        let reply = roundtrip(&mut first, "INGEST w h0 write 64\n");
        assert!(reply.starts_with("OK id=0"), "{reply}");

        let second = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(second);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "ERR busy reason=connections\n");
        // The shed connection is closed immediately after the error.
        reply.clear();
        assert_eq!(reader.read_line(&mut reply).unwrap(), 0);

        let stats = roundtrip(&mut first, "STATS\n");
        assert_eq!(stat_value(&stats, "shed_connections"), 1);
        // No request was ever read from the shed connection.
        assert_eq!(stat_value(&stats, "request_errors"), 0);

        assert_eq!(roundtrip(&mut first, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn idle_timeout_closes_silent_connections() {
        let (addr, handle) = start_configured(IndexOptions::default(), |s| {
            s.with_idle_timeout(Some(Duration::from_millis(50)))
        });
        let idle = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(idle);
        // Say nothing: the server must hang up on us, not the reverse.
        let mut line = String::new();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "{line}");

        let mut fresh = TcpStream::connect(addr).unwrap();
        let stats = roundtrip(&mut fresh, "STATS\n");
        assert_eq!(stat_value(&stats, "timeouts"), 1);
        assert_eq!(roundtrip(&mut fresh, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn ungoverned_stats_report_zeroed_governance_keys() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        let stats = roundtrip(&mut stream, "STATS\n");
        for key in ["mem_used_bytes", "mem_limit_bytes", "mem_reclaims", "shed_memory", "timeouts"]
        {
            assert_eq!(stat_value(&stats, key), 0, "{key}");
        }
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn survives_client_disconnect() {
        let (addr, handle) = start();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"INGEST w h0 write 64\n").unwrap();
            // Drop without reading the reply: the server must accept the
            // next connection regardless.
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn save_without_save_dir_is_a_clean_error() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert!(reply.starts_with("ERR no save directory"), "{reply}");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn save_verb_snapshots_and_shutdown_reports_the_save() {
        let dir = std::env::temp_dir().join(format!("kastio-server-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_save_dir(Some(dir.clone()));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();

        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert_eq!(reply, "OK saved entries=1 generation=1\n");
        assert!(dir.join("MANIFEST").exists());

        let stats = roundtrip(&mut stream, "STATS\n");
        assert!(stats.contains("STAT snapshots 1\n"), "{stats}");
        assert!(stats.contains("STAT snapshot_errors 0\n"), "{stats}");
        assert!(stats.contains("STAT last_snapshot_ok 1\n"), "{stats}");
        assert!(stats.contains("STAT last_snapshot_generation 1\n"), "{stats}");

        roundtrip(&mut stream, "INGEST r h0 read 8\n");
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye saved=2 generation=2\n", "shutdown reports its save");
        let index = handle.join().unwrap();
        assert_eq!(index.snapshot_status().snapshots, 2);

        let restored =
            crate::persist::load_index(&dir, IndexOptions::default()).expect("snapshot loads");
        assert_eq!(restored.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_shutdown_save_is_reported_to_the_requesting_client() {
        // /dev/null is a file, so creating a snapshot directory under it
        // fails with a real IO error even when running as root.
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_save_dir(Some(std::path::PathBuf::from("/dev/null/corpus")));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64\n");
        let reply = roundtrip(&mut stream, "SAVE\n");
        assert!(reply.starts_with("ERR save failed:"), "{reply}");
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert!(reply.starts_with("ERR save failed:"), "{reply}");
        assert!(reply.contains("shutting down anyway"), "{reply}");
        let index = handle.join().unwrap();
        let status = index.snapshot_status();
        assert_eq!(status.errors, 2);
        assert_eq!(status.last_ok, Some(false));
        assert_eq!(index.len(), 1, "the corpus itself is intact in memory");
    }

    #[test]
    fn shutdown_handle_stops_the_server_without_a_client() {
        let (addr, handle, shutdown) = {
            let server =
                Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default())).unwrap();
            let addr = server.local_addr().unwrap();
            let shutdown = server.shutdown_handle().unwrap();
            let handle = std::thread::spawn(move || server.serve().expect("server runs"));
            (addr, handle, shutdown)
        };
        // An idle client is connected; the handle must still stop serve().
        let idle = TcpStream::connect(addr).unwrap();
        shutdown.shutdown();
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 0);
        drop(idle);
    }

    #[test]
    fn hello_negotiates_and_other_verbs_work_without_it() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        // A client that never sends HELLO keeps working (back-compat)…
        let reply = roundtrip(&mut stream, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");

        // …and the handshake itself round-trips, with and without the
        // optional client token.
        let reply = roundtrip(&mut stream, "HELLO 1\n");
        assert_eq!(reply, crate::protocol::render_hello_reply());
        let reply = roundtrip(&mut stream, "HELLO 1 test-suite\n");
        assert!(reply.starts_with("OK kastio proto=1 "), "{reply}");

        // Unknown versions get the structured rejection, and the
        // connection stays usable.
        let reply = roundtrip(&mut stream, "HELLO 7\n");
        assert_eq!(reply, "ERR unsupported proto 7 (server speaks 1)\n");
        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        assert!(reply.starts_with("OK matches=1"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn stats_reports_connection_and_verb_counters() {
        let server =
            Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default())).unwrap();
        let addr = server.local_addr().unwrap();
        let metrics = server.metrics();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));

        let mut first = TcpStream::connect(addr).unwrap();
        roundtrip(&mut first, "HELLO 1 counter-test\n");
        roundtrip(&mut first, "INGEST w h0 write 64\n");
        roundtrip(&mut first, "BOGUS\n"); // parse error → requests+1, errors+1
        drop(first);

        let mut second = TcpStream::connect(addr).unwrap();
        roundtrip(&mut second, "QUERY k=1 h0 write 64\n");
        let stats = roundtrip(&mut second, "STATS\n");
        assert!(stats.contains("STAT connections 2\n"), "{stats}");
        assert!(stats.contains("STAT requests_total 5\n"), "{stats}");
        assert!(stats.contains("STAT request_errors 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_hello 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_ingest 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_query 1\n"), "{stats}");
        assert!(stats.contains("STAT verb_stats 1\n"), "{stats}");
        assert!(stats.contains("STAT uptime_secs "), "{stats}");

        assert_eq!(roundtrip(&mut second, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.connections, 2);
        assert_eq!(snapshot.shutdown, 1);
        assert_eq!(snapshot.requests, 6);
        assert_eq!(snapshot.errors, 1);
    }

    #[test]
    fn metrics_verb_exposes_latency_histograms() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        for _ in 0..3 {
            roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        }
        let reply = roundtrip(&mut stream, "METRICS\n");
        assert!(reply.starts_with("OK metrics\n"), "{reply}");
        assert!(reply.ends_with("END\n"), "{reply}");
        assert!(reply.contains("# TYPE kastio_request_latency_ns histogram\n"), "{reply}");
        assert!(reply.contains("kastio_verb_requests_total{verb=\"query\"} 3\n"), "{reply}");
        assert!(
            reply.contains("kastio_request_latency_ns_count{verb=\"query\"} 3\n"),
            "every query lands in the histogram: {reply}"
        );
        assert!(
            reply.contains("kastio_request_latency_ns_bucket{verb=\"query\",le=\"+Inf\"} 3\n"),
            "{reply}"
        );
        assert!(reply.contains("kastio_stage_latency_ns_count{stage=\"kernel\"} 3\n"), "{reply}");
        assert!(reply.contains("kastio_stage_latency_ns_count{stage=\"parse\"} "), "{reply}");
        assert!(reply.contains("kastio_slowlog_entries 0\n"), "{reply}");

        // The quantiles surface in STATS too, now that query has samples.
        let stats = roundtrip(&mut stream, "STATS\n");
        assert!(stats.contains("STAT latency_query_p50_us "), "{stats}");
        assert!(stats.contains("STAT latency_query_p99_us "), "{stats}");
        assert!(stats.contains("STAT verb_metrics 1\n"), "{stats}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn traced_query_carries_a_stage_breakdown_line() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");

        let reply = roundtrip(&mut stream, "QUERY k=1 trace=1 h0 write 64\n");
        assert!(reply.starts_with("OK matches=1 label=w\n"), "{reply}");
        let lines: Vec<&str> = reply.lines().collect();
        let trace = lines[lines.len() - 2];
        assert!(trace.starts_with("TRACE total_us="), "{reply}");
        assert_eq!(*lines.last().unwrap(), "END");
        let fields: std::collections::HashMap<&str, u64> = trace
            .split_whitespace()
            .skip(1)
            .map(|kv| kv.split_once('=').unwrap())
            .map(|(k, v)| (k, v.parse().unwrap()))
            .collect();
        let total = fields["total_us"];
        let stage_sum =
            fields["parse_us"] + fields["prefilter_us"] + fields["cache_us"] + fields["kernel_us"];
        assert!(stage_sum <= total, "stages {stage_sum}µs exceed total {total}µs: {trace}");

        // An untraced query on the same connection stays byte-compatible.
        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        assert!(!reply.contains("TRACE"), "{reply}");

        // MQUERY gets one TRACE line for the whole batch.
        let reply = roundtrip(&mut stream, "MQUERY k=1 trace=1 2\nh0 write 64\nh0 write 64\n");
        assert!(reply.contains("\nTRACE total_us="), "{reply}");
        assert!(reply.ends_with("END\n"), "{reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn slow_log_records_and_serves_over_threshold_requests() {
        // Threshold 0 logs everything — the deterministic test hook.
        let server = Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default()))
            .unwrap()
            .with_slow_log(Some(0));
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        let mut stream = TcpStream::connect(addr).unwrap();

        roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        let reply = roundtrip(&mut stream, "SLOWLOG LEN\n");
        assert_eq!(reply, "OK slowlog len=2\n");

        let reply = roundtrip(&mut stream, "SLOWLOG GET\n");
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines[0], "OK slowlog entries=3", "LEN itself was logged too: {reply}");
        // Newest first: the LEN request, then the query, then the ingest.
        assert!(lines[1].contains("verb=SLOWLOG") && lines[1].contains("args=LEN"), "{reply}");
        assert!(lines[2].contains("verb=QUERY"), "{reply}");
        assert!(lines[2].contains("args=k=1,ops=1"), "{reply}");
        assert!(lines[2].contains("kernel:"), "query entries carry stage spans: {reply}");
        assert!(lines[3].contains("verb=INGEST") && lines[3].contains("label=w"), "{reply}");
        assert!(*lines.last().unwrap() == "END", "{reply}");

        let reply = roundtrip(&mut stream, "SLOWLOG RESET\n");
        assert_eq!(reply, "OK slowlog reset\n");
        let reply = roundtrip(&mut stream, "SLOWLOG GET\n");
        assert!(reply.starts_with("OK slowlog entries=1\n"), "only the RESET itself: {reply}");

        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn slow_log_is_disabled_by_default() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        roundtrip(&mut stream, "INGEST w h0 write 64\n");
        roundtrip(&mut stream, "QUERY k=1 h0 write 64\n");
        assert_eq!(roundtrip(&mut stream, "SLOWLOG LEN\n"), "OK slowlog len=0\n");
        assert_eq!(roundtrip(&mut stream, "SLOWLOG GET\n"), "OK slowlog entries=0\nEND\n");
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn batch_header_eof_before_items_closes_cleanly() {
        let (addr, handle) = start();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Announce 2 items but hang up after the header.
            stream.write_all(b"BATCH INGEST 2\n").unwrap();
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        assert_eq!(roundtrip(&mut stream, "SHUTDOWN\n"), "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 0, "a truncated batch ingests nothing");
    }
}
