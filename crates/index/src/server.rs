//! The `serve` daemon: a [`TcpListener`] loop around a [`PatternIndex`].
//!
//! Deliberately dependency-free (no async runtime — the build environment
//! is offline, and blocking I/O is entirely adequate for a line-oriented
//! request/reply protocol whose unit of work is a kernel batch). Each
//! connection gets its own OS thread so an idle client never blocks the
//! others; the index sits behind a [`Mutex`] locked per *request*, and
//! *within* a query the index fans the kernel batch out across scoped
//! threads, which is where the actual CPU time goes.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::index::PatternIndex;
use crate::protocol::{parse_request, render_query_reply, render_stats_reply, Request};

/// What handling one connection concluded.
enum Disposition {
    /// The client went away; accept the next connection.
    ClientDone,
    /// A `SHUTDOWN` request was honoured; stop the server.
    Shutdown,
}

/// A running (not yet serving) daemon: a bound listener plus the index it
/// will serve.
///
/// Binding is separated from serving so callers can learn the actual
/// address before the blocking accept loop starts — essential with an
/// ephemeral port (`:0`), which is how the integration tests and the
/// in-process example run.
///
/// # Examples
///
/// ```no_run
/// use kastio_index::{IndexOptions, PatternIndex, Server};
///
/// # fn main() -> std::io::Result<()> {
/// let index = PatternIndex::new(IndexOptions::default());
/// let server = Server::bind("127.0.0.1:0", index)?;
/// println!("listening on {}", server.local_addr()?);
/// let _index_back = server.serve()?; // blocks until SHUTDOWN
/// # Ok(())
/// # }
/// ```
pub struct Server {
    listener: TcpListener,
    index: PatternIndex,
}

impl Server {
    /// Binds a listener on `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port) around the given index.
    ///
    /// # Errors
    ///
    /// Propagates the [`TcpListener::bind`] failure.
    pub fn bind(addr: &str, index: PatternIndex) -> io::Result<Server> {
        Ok(Server { listener: TcpListener::bind(addr)?, index })
    }

    /// The address the listener actually bound.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections — each on its own thread — until a
    /// client sends `SHUTDOWN`, then joins the handlers and returns the
    /// index (so the caller can persist it).
    ///
    /// Accept errors are treated as transient (EMFILE under fd pressure,
    /// ECONNABORTED, …): the loop backs off briefly and retries, so the
    /// in-memory corpus is never lost to a hiccup. Only a long unbroken
    /// run of failures abandons accepting — and even then the index is
    /// returned intact so the caller's save path still runs.
    ///
    /// # Errors
    ///
    /// Currently none after a successful bind; the `io::Result` is kept
    /// for callers that treat serving uniformly with binding.
    pub fn serve(self) -> io::Result<PatternIndex> {
        let addr = self.listener.local_addr()?;
        let index = Arc::new(Mutex::new(self.index));
        let stop = Arc::new(AtomicBool::new(false));
        // Registry of live client sockets, keyed by connection id. Each
        // handler removes its own entry on exit, so finished connections
        // release their file descriptors immediately; whatever is left at
        // shutdown is force-closed below to wake blocked readers.
        let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut consecutive_errors: u32 = 0;
        for (connection_id, stream) in (0_u64..).zip(self.listener.incoming()) {
            let stream = match stream {
                Ok(stream) => {
                    consecutive_errors = 0;
                    stream
                }
                Err(_) if stop.load(Ordering::SeqCst) => break,
                Err(_) => {
                    consecutive_errors += 1;
                    if consecutive_errors > 100 {
                        break; // listener looks permanently broken
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            if stop.load(Ordering::SeqCst) {
                break; // woken by the shutdown nudge below
            }
            // Reap finished handlers so the handle list tracks live
            // connections, not total connections served.
            let (done, live): (Vec<_>, Vec<_>) =
                handlers.into_iter().partition(|handler| handler.is_finished());
            for handler in done {
                let _ = handler.join();
            }
            handlers = live;

            match stream.try_clone() {
                Ok(clone) => {
                    lock_registry(&connections).insert(connection_id, clone);
                }
                // Without a registered clone the socket could not be
                // force-closed at shutdown and its handler would block
                // serve() in join() forever — refuse the connection
                // instead (try_clone only fails under fd exhaustion).
                Err(_) => continue,
            }
            let (index, stop, connections) =
                (Arc::clone(&index), Arc::clone(&stop), Arc::clone(&connections));
            handlers.push(std::thread::spawn(move || {
                let disposition = handle_connection(stream, &index);
                lock_registry(&connections).remove(&connection_id);
                if let Ok(Disposition::Shutdown) = disposition {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it observes the flag.
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        // Close the remaining client sockets so handlers blocked in
        // read_line wake up and exit, making the joins below finite.
        for (_, connection) in lock_registry(&connections).drain() {
            let _ = connection.shutdown(std::net::Shutdown::Both);
        }
        for handler in handlers {
            let _ = handler.join();
        }
        let mutex = Arc::try_unwrap(index).expect("all connection handlers joined");
        Ok(mutex.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner()))
    }
}

fn lock_registry(
    connections: &Mutex<HashMap<u64, TcpStream>>,
) -> MutexGuard<'_, HashMap<u64, TcpStream>> {
    connections.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn lock(index: &Mutex<PatternIndex>) -> MutexGuard<'_, PatternIndex> {
    // A panicking handler thread cannot leave the index in a torn state
    // (&mut methods either finish or unwind before publishing), so a
    // poisoned lock is still safe to reuse.
    index.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Upper bound on one request line. A client streaming data with no
/// newline would otherwise grow the line buffer without limit and OOM the
/// daemon; 16 MiB comfortably fits any realistic inline trace.
const MAX_REQUEST_BYTES: u64 = 16 << 20;

/// Serves one client: one reply per request line until EOF or `SHUTDOWN`.
/// The index lock is held per request, never across client think time.
fn handle_connection(stream: TcpStream, index: &Mutex<PatternIndex>) -> io::Result<Disposition> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.by_ref().take(MAX_REQUEST_BYTES).read_line(&mut line)? == 0 {
            return Ok(Disposition::ClientDone); // EOF
        }
        if line.len() as u64 >= MAX_REQUEST_BYTES && !line.ends_with('\n') {
            // The limit truncated the line mid-request; the rest of the
            // stream is unframed garbage, so reply and hang up.
            writer.write_all(b"ERR request line too long\n")?;
            writer.flush()?;
            return Ok(Disposition::ClientDone);
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(&line) {
            Err(message) => format!("ERR {message}\n"),
            Ok(Request::Ingest { label, trace }) => {
                let mut index = lock(index);
                let name = format!("e{}", index.len());
                let id = index.ingest(name, label, trace);
                format!("OK id={} name=e{} entries={}\n", id.0, id.0, index.len())
            }
            Ok(Request::Query { k, trace }) => render_query_reply(&lock(index).query(&trace, k)),
            Ok(Request::Stats) => {
                let index = lock(index);
                render_stats_reply(index.len(), index.cached_pairs(), &index.stats())
            }
            Ok(Request::Shutdown) => {
                writer.write_all(b"OK bye\n")?;
                writer.flush()?;
                return Ok(Disposition::Shutdown);
            }
        };
        writer.write_all(reply.as_bytes())?;
        writer.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexOptions;

    fn start() -> (SocketAddr, std::thread::JoinHandle<PatternIndex>) {
        let server =
            Server::bind("127.0.0.1:0", PatternIndex::new(IndexOptions::default())).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve().expect("server runs"));
        (addr, handle)
    }

    fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
        stream.write_all(request.as_bytes()).unwrap();
        stream.flush().unwrap();
        // One outstanding request at a time, so a throwaway BufReader
        // cannot buffer past the reply it is framing.
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        crate::protocol::read_reply(&mut reader).expect("server replied")
    }

    #[test]
    fn ingest_query_stats_shutdown_lifecycle() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();

        let reply = roundtrip(&mut stream, "INGEST w h0 write 64;h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        let reply = roundtrip(&mut stream, "INGEST r h0 read 8;h0 read 8\n");
        assert_eq!(reply, "OK id=1 name=e1 entries=2\n");

        let reply = roundtrip(&mut stream, "QUERY k=1 h0 write 64;h0 write 64\n");
        assert!(reply.starts_with("OK matches=1 label=w\n"), "{reply}");
        assert!(reply.contains("MATCH 1 e0 w "), "{reply}");
        assert!(reply.ends_with("END\n"));

        let reply = roundtrip(&mut stream, "STATS\n");
        assert!(reply.contains("STAT entries 2\n"), "{reply}");
        assert!(reply.contains("STAT queries 1\n"), "{reply}");

        let reply = roundtrip(&mut stream, "BOGUS\n");
        assert!(reply.starts_with("ERR unknown verb"), "{reply}");

        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 2, "server hands the corpus back on shutdown");
    }

    #[test]
    fn idle_connection_does_not_block_other_clients() {
        let (addr, handle) = start();
        // An idle client holds its connection open the whole time.
        let idle = TcpStream::connect(addr).unwrap();
        let mut active = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut active, "INGEST w h0 write 64\n");
        assert_eq!(reply, "OK id=0 name=e0 entries=1\n");
        let reply = roundtrip(&mut active, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        // Shutdown must complete even though `idle` never disconnected.
        let index = handle.join().unwrap();
        assert_eq!(index.len(), 1);
        drop(idle);
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let (addr, handle) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Stream past the cap without ever sending a newline.
        let chunk = vec![b'a'; 1 << 20];
        for _ in 0..17 {
            if stream.write_all(&chunk).is_err() {
                break; // server already hung up mid-write — acceptable
            }
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        let _ = reader.read_line(&mut reply);
        if !reply.is_empty() {
            assert!(reply.starts_with("ERR request line too long"), "{reply}");
        }
        // Either way the daemon is still alive and shuts down cleanly.
        let mut fresh = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut fresh, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        handle.join().unwrap();
    }

    #[test]
    fn survives_client_disconnect() {
        let (addr, handle) = start();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"INGEST w h0 write 64\n").unwrap();
            // Drop without reading the reply: the server must accept the
            // next connection regardless.
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        let reply = roundtrip(&mut stream, "SHUTDOWN\n");
        assert_eq!(reply, "OK bye\n");
        handle.join().unwrap();
    }
}
