//! Property tests for the corpus index: the cache is semantically
//! invisible, and normalised similarity is a bounded symmetric score.

use proptest::prelude::*;

use kastio_core::{pattern_string, ByteMode, KastKernel, KastOptions, StringKernel, TokenInterner};
use kastio_index::{IndexOptions, PatternIndex};
use kastio_trace::{HandleId, OpKind, Operation, Trace};

/// Small closed vocabulary so random traces share plenty of literals and
/// the kernel actually has features to find.
fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u32..3, 0usize..5, 0u64..4), 1..48).prop_map(|ops| {
        ops.into_iter()
            .map(|(h, kind, byte_class)| {
                let kind = match kind {
                    0 => OpKind::Open,
                    1 => OpKind::Read,
                    2 => OpKind::Write,
                    3 => OpKind::Lseek,
                    _ => OpKind::Close,
                };
                Operation::new(HandleId::new(h), kind, byte_class * 4096)
            })
            .collect()
    })
}

fn arb_corpus() -> impl Strategy<Value = Vec<Trace>> {
    proptest::collection::vec(arb_trace(), 2..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached and uncached kernel lookups are interchangeable: an index
    /// with the LRU disabled, an index answering fresh, and an index
    /// answering from cache all return bit-identical neighbour lists.
    #[test]
    fn cached_lookups_equal_uncached(corpus in arb_corpus(), query in arb_trace()) {
        let cached = PatternIndex::new(IndexOptions::default());
        let uncached = PatternIndex::new(IndexOptions {
            cache_capacity: 0,
            ..IndexOptions::default()
        });
        for (i, trace) in corpus.iter().enumerate() {
            cached.ingest(format!("e{i}"), format!("l{}", i % 2), trace.clone()).unwrap();
            uncached.ingest(format!("e{i}"), format!("l{}", i % 2), trace.clone()).unwrap();
        }
        let first = cached.query(&query, corpus.len());
        let second = cached.query(&query, corpus.len());
        let fresh = uncached.query(&query, corpus.len());

        prop_assert_eq!(second.evaluated, 0, "repeat query is fully cached");
        prop_assert_eq!(second.cache_hits, first.evaluated + first.cache_hits);
        prop_assert_eq!(&first.neighbors, &second.neighbors);
        prop_assert_eq!(&first.label, &second.label);

        prop_assert_eq!(first.neighbors.len(), fresh.neighbors.len());
        for (a, b) in first.neighbors.iter().zip(&fresh.neighbors) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.similarity.to_bits(), b.similarity.to_bits(),
                "cache must not change kernel values: {} vs {}", a.similarity, b.similarity);
        }
    }

    /// Normalised similarity is a non-negative, finite, symmetric score
    /// that is exactly 1 on identical patterns and exactly what the index
    /// reports.
    ///
    /// We deliberately do NOT assert a hard `≤ 1` upper bound: the Kast
    /// feature space is pair-dependent, so the cosine form can exceed 1
    /// for strongly repetitive cross-pairs (see the
    /// `StringKernel::normalized` docs — the same reason §4.1 of the
    /// paper clamps negative eigenvalues before analysis). On this
    /// generator's distribution values do stay in [0, 1], but that is a
    /// property of the corpus, not of the kernel.
    #[test]
    fn similarity_is_a_symmetric_score(a in arb_trace(), b in arb_trace()) {
        let mut interner = TokenInterner::new();
        let ia = interner.intern_string(&pattern_string(&a, ByteMode::Preserve));
        let ib = interner.intern_string(&pattern_string(&b, ByteMode::Preserve));
        let kernel = KastKernel::new(KastOptions::with_cut_weight(2));

        let sab = kernel.normalized(&ia, &ib);
        let sba = kernel.normalized(&ib, &ia);
        prop_assert!(sab >= 0.0 && sab.is_finite(), "similarity {sab} not a score");
        prop_assert_eq!(sab.to_bits(), sba.to_bits(), "asymmetric: {} vs {}", sab, sba);

        // Self-similarity normalises to exactly 1: the self-kernel's only
        // independent shared feature is the whole pattern string.
        let saa = kernel.normalized(&ia, &ia);
        prop_assert_eq!(saa.to_bits(), 1.0f64.to_bits(), "self-similarity {} != 1", saa);

        let index = PatternIndex::new(IndexOptions::default());
        index.ingest("b", "label", b.clone()).unwrap();
        let result = index.query(&a, 1);
        prop_assert_eq!(result.neighbors.len(), 1);
        let served = result.neighbors[0].similarity;
        prop_assert!(served >= 0.0 && served.is_finite());
        prop_assert_eq!(served.to_bits(), sab.to_bits(),
            "index must serve the direct kernel value: {} vs {}", served, sab);
    }
}
