//! Double centering of Gram matrices.
//!
//! Kernel PCA requires the feature-space data to be mean-centred; on a
//! Gram matrix that is the classic double-centering transform
//! `K' = K − 1·K/n − K·1/n + 1·K·1/n²` (Schölkopf, Smola & Müller 1997).

use crate::matrix::SquareMatrix;

/// Double-centres a Gram matrix.
///
/// # Examples
///
/// ```
/// use kastio_linalg::{center_gram, SquareMatrix};
///
/// let k = SquareMatrix::from_rows(vec![vec![1.0, 0.5], vec![0.5, 1.0]]);
/// let c = center_gram(&k);
/// // Every row (and column) of a centred Gram matrix sums to zero.
/// assert!((c.row(0).iter().sum::<f64>()).abs() < 1e-12);
/// ```
pub fn center_gram(k: &SquareMatrix) -> SquareMatrix {
    let n = k.n();
    if n == 0 {
        return k.clone();
    }
    let nf = n as f64;
    let row_means: Vec<f64> = (0..n).map(|i| k.row(i).iter().sum::<f64>() / nf).collect();
    let total_mean = row_means.iter().sum::<f64>() / nf;
    let mut out = SquareMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            out.set(i, j, k.get(i, j) - row_means[i] - row_means[j] + total_mean);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_columns_sum_to_zero() {
        let k = SquareMatrix::from_rows(vec![
            vec![2.0, 0.3, 0.1],
            vec![0.3, 1.5, 0.7],
            vec![0.1, 0.7, 3.0],
        ]);
        let c = center_gram(&k);
        for i in 0..3 {
            let row_sum: f64 = c.row(i).iter().sum();
            assert!(row_sum.abs() < 1e-12, "row {i} sums to {row_sum}");
            let col_sum: f64 = (0..3).map(|j| c.get(j, i)).sum();
            assert!(col_sum.abs() < 1e-12);
        }
    }

    #[test]
    fn preserves_symmetry() {
        let k = SquareMatrix::from_rows(vec![vec![1.0, 0.2], vec![0.2, 1.0]]);
        assert!(center_gram(&k).is_symmetric(1e-12));
    }

    #[test]
    fn centering_is_idempotent() {
        let k = SquareMatrix::from_rows(vec![
            vec![1.0, 0.9, 0.1],
            vec![0.9, 1.0, 0.2],
            vec![0.1, 0.2, 1.0],
        ]);
        let once = center_gram(&k);
        let twice = center_gram(&once);
        assert!(once.max_abs_diff(&twice) < 1e-12);
    }

    #[test]
    fn constant_matrix_centres_to_zero() {
        let k = SquareMatrix::from_rows(vec![vec![5.0; 3]; 3]);
        let c = center_gram(&k);
        assert!(c.frobenius_norm() < 1e-12);
    }

    #[test]
    fn empty_is_noop() {
        let k = SquareMatrix::zeros(0);
        assert_eq!(center_gram(&k), k);
    }
}
