//! Dense square matrices (row-major `f64` storage).
//!
//! Everything the kernel-analysis side needs — Gram matrices are 110×110
//! in the paper's evaluation, so a straightforward dense representation
//! with O(1) access is the right tool.

use std::fmt;

/// A dense square matrix of `f64`.
///
/// # Examples
///
/// ```
/// use kastio_linalg::SquareMatrix;
///
/// let m = SquareMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.get(0, 1), 2.0);
/// assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// A zero matrix of side `n`.
    pub fn zeros(n: usize) -> Self {
        SquareMatrix { n, data: vec![0.0; n * n] }
    }

    /// The identity matrix of side `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = SquareMatrix::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a symmetric matrix by evaluating `f(i, j)` for `i ≤ j` and
    /// mirroring.
    pub fn from_fn_sym<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = f(i, j);
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not form a square grid.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for row in &rows {
            assert_eq!(row.len(), n, "rows must form a square matrix");
            data.extend_from_slice(row);
        }
        SquareMatrix { n, data }
    }

    /// Builds a matrix from row-major storage.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_row_major(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "storage must hold n² values");
        SquareMatrix { n, data }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j]
    }

    /// Writes entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j] = value;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The raw row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != n`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "vector length must match");
        (0..self.n).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum()).collect()
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the sides differ.
    pub fn mul(&self, other: &SquareMatrix) -> SquareMatrix {
        assert_eq!(self.n, other.n, "matrix sides must match");
        let n = self.n;
        let mut out = SquareMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.data[i * n + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> SquareMatrix {
        let mut out = SquareMatrix::zeros(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in i + 1..self.n {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Largest absolute off-diagonal entry (0 for n ≤ 1).
    pub fn max_abs_off_diagonal(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    max = max.max(self.get(i, j).abs());
                }
            }
        }
        max
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sides differ.
    pub fn max_abs_diff(&self, other: &SquareMatrix) -> f64 {
        assert_eq!(self.n, other.n, "matrix sides must match");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

impl fmt::Display for SquareMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    f.write_str(" ")?;
                }
                write!(f, "{:10.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let i3 = SquareMatrix::identity(3);
        let m = SquareMatrix::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        assert_eq!(i3.mul(&m), m);
        assert_eq!(m.mul(&i3), m);
        assert_eq!(i3.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_and_symmetry() {
        let m = SquareMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!(!m.is_symmetric(1e-12));
        assert_eq!(m.transpose().get(0, 1), 3.0);
        let s = SquareMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(s.is_symmetric(0.0));
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = SquareMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = SquareMatrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.mul(&b);
        assert_eq!(c, SquareMatrix::from_rows(vec![vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn norms_and_diffs() {
        let a = SquareMatrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs_off_diagonal(), 0.0);
        let b = SquareMatrix::zeros(2);
        assert_eq!(a.max_abs_diff(&b), 4.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_rows_panic() {
        let _ = SquareMatrix::from_rows(vec![vec![1.0], vec![2.0, 3.0]]);
    }

    #[test]
    #[should_panic(expected = "n²")]
    fn bad_row_major_panics() {
        let _ = SquareMatrix::from_row_major(2, vec![1.0; 3]);
    }
}
