//! Kernel Principal Component Analysis (Schölkopf, Smola & Müller 1997).
//!
//! The paper projects every similarity matrix onto its top two kernel
//! principal components (Figures 6 and 8). Given a Gram matrix `K`:
//! centre it, eigendecompose `K' = VΛVᵀ`, and the projection of training
//! sample `i` onto component `c` is `√λ_c · v_{c,i}`.

use std::error::Error;
use std::fmt;

use crate::center::center_gram;
use crate::jacobi::{eigh, EigenError};
use crate::matrix::SquareMatrix;

/// Why a Kernel PCA fit failed.
#[derive(Debug, Clone, PartialEq)]
pub enum KpcaError {
    /// The eigendecomposition failed.
    Eigen(EigenError),
    /// The centred matrix had no positive spectrum to project onto.
    DegenerateSpectrum,
}

impl fmt::Display for KpcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KpcaError::Eigen(e) => write!(f, "kernel pca: {e}"),
            KpcaError::DegenerateSpectrum => {
                f.write_str("kernel pca: centred matrix has no positive eigenvalue")
            }
        }
    }
}

impl Error for KpcaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KpcaError::Eigen(e) => Some(e),
            KpcaError::DegenerateSpectrum => None,
        }
    }
}

impl From<EigenError> for KpcaError {
    fn from(e: EigenError) -> Self {
        KpcaError::Eigen(e)
    }
}

/// A fitted Kernel PCA projection of the training set.
///
/// # Examples
///
/// ```
/// use kastio_linalg::{KernelPca, SquareMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two tight groups: {0,1} similar, {2,3} similar, cross-similarity low.
/// let k = SquareMatrix::from_rows(vec![
///     vec![1.0, 0.9, 0.1, 0.1],
///     vec![0.9, 1.0, 0.1, 0.1],
///     vec![0.1, 0.1, 1.0, 0.9],
///     vec![0.1, 0.1, 0.9, 1.0],
/// ]);
/// let pca = KernelPca::fit(&k, 2)?;
/// let xs: Vec<f64> = (0..4).map(|i| pca.coords(i)[0]).collect();
/// // The first component separates the groups.
/// assert!(xs[0] * xs[2] < 0.0);
/// assert!(xs[0] * xs[1] > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPca {
    coords: Vec<Vec<f64>>,
    eigenvalues: Vec<f64>,
}

impl KernelPca {
    /// Fits a Kernel PCA with up to `n_components` components to a Gram
    /// matrix (centering included; components with non-positive
    /// eigenvalues are discarded).
    ///
    /// # Errors
    ///
    /// * [`KpcaError::Eigen`] if the matrix is asymmetric or the solver
    ///   does not converge.
    /// * [`KpcaError::DegenerateSpectrum`] if no positive eigenvalue
    ///   remains after centering (e.g. all-identical samples).
    pub fn fit(gram: &SquareMatrix, n_components: usize) -> Result<KernelPca, KpcaError> {
        let n = gram.n();
        let centred = center_gram(gram);
        let eig = eigh(&centred)?;
        let eps = 1e-10 * centred.frobenius_norm().max(1.0);
        let kept: Vec<usize> = (0..n).filter(|&c| eig.values[c] > eps).take(n_components).collect();
        if kept.is_empty() {
            return Err(KpcaError::DegenerateSpectrum);
        }
        let mut coords = vec![Vec::with_capacity(kept.len()); n];
        for &c in &kept {
            let scale = eig.values[c].sqrt();
            for (i, coord) in coords.iter_mut().enumerate() {
                coord.push(scale * eig.vectors.get(i, c));
            }
        }
        let eigenvalues = kept.iter().map(|&c| eig.values[c]).collect();
        Ok(KernelPca { coords, eigenvalues })
    }

    /// The projected coordinates of training sample `i` (one entry per
    /// kept component).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn coords(&self, i: usize) -> &[f64] {
        &self.coords[i]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the projection is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Number of kept components.
    pub fn n_components(&self) -> usize {
        self.eigenvalues.len()
    }

    /// The eigenvalues of the kept components, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of the kept spectrum explained by each component.
    pub fn explained_ratio(&self) -> Vec<f64> {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues.iter().map(|v| v / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_gram() -> SquareMatrix {
        SquareMatrix::from_rows(vec![
            vec![1.0, 0.95, 0.05, 0.05, 0.05],
            vec![0.95, 1.0, 0.05, 0.05, 0.05],
            vec![0.05, 0.05, 1.0, 0.9, 0.9],
            vec![0.05, 0.05, 0.9, 1.0, 0.9],
            vec![0.05, 0.05, 0.9, 0.9, 1.0],
        ])
    }

    #[test]
    fn separates_two_blocks_on_first_component() {
        let pca = KernelPca::fit(&block_gram(), 2).unwrap();
        let xs: Vec<f64> = (0..5).map(|i| pca.coords(i)[0]).collect();
        assert!(xs[0] * xs[1] > 0.0);
        assert!(xs[2] * xs[3] > 0.0 && xs[3] * xs[4] > 0.0);
        assert!(xs[0] * xs[2] < 0.0, "blocks land on opposite sides");
    }

    #[test]
    fn eigenvalues_descend_and_ratios_sum_to_one() {
        let pca = KernelPca::fit(&block_gram(), 4).unwrap();
        let ev = pca.eigenvalues();
        for w in ev.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let sum: f64 = pca.explained_ratio().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn component_count_is_capped_by_request() {
        let pca = KernelPca::fit(&block_gram(), 1).unwrap();
        assert_eq!(pca.n_components(), 1);
        assert_eq!(pca.coords(0).len(), 1);
    }

    #[test]
    fn centring_collapses_constant_gram() {
        let k = SquareMatrix::from_rows(vec![vec![1.0; 3]; 3]);
        assert_eq!(KernelPca::fit(&k, 2), Err(KpcaError::DegenerateSpectrum));
    }

    #[test]
    fn projection_distances_reflect_kernel_distances() {
        // For a PSD gram, squared feature distance = k_ii + k_jj - 2k_ij;
        // with a full-rank projection the coordinates must reproduce it.
        let k = block_gram();
        let pca = KernelPca::fit(&k, 5).unwrap();
        let centred = center_gram(&k);
        for i in 0..5 {
            for j in 0..5 {
                let d2_kernel = centred.get(i, i) + centred.get(j, j) - 2.0 * centred.get(i, j);
                let d2_coords: f64 =
                    pca.coords(i).iter().zip(pca.coords(j)).map(|(a, b)| (a - b) * (a - b)).sum();
                assert!((d2_kernel - d2_coords).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn asymmetric_gram_errors() {
        let k = SquareMatrix::from_rows(vec![vec![1.0, 0.5], vec![0.1, 1.0]]);
        assert!(matches!(KernelPca::fit(&k, 1), Err(KpcaError::Eigen(_))));
    }
}
