//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! For the 110×110 similarity matrices of the paper a textbook Jacobi
//! solver is exact enough (it converges quadratically and is
//! unconditionally stable for symmetric input) and keeps the workspace
//! dependency-free.

use std::error::Error;
use std::fmt;

use crate::matrix::SquareMatrix;

/// Why an eigendecomposition was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum EigenError {
    /// The input was not symmetric within the configured tolerance.
    NotSymmetric {
        /// The largest `|a_ij − a_ji|` found.
        max_asymmetry: f64,
    },
    /// The sweep limit was reached before the off-diagonal vanished.
    NoConvergence {
        /// Residual off-diagonal magnitude when the solver gave up.
        off_diagonal: f64,
    },
}

impl fmt::Display for EigenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EigenError::NotSymmetric { max_asymmetry } => {
                write!(f, "matrix is not symmetric (max asymmetry {max_asymmetry:e})")
            }
            EigenError::NoConvergence { off_diagonal } => {
                write!(f, "jacobi sweeps did not converge (residual {off_diagonal:e})")
            }
        }
    }
}

impl Error for EigenError {}

/// The result of [`eigh`]: eigenpairs sorted by descending eigenvalue.
///
/// Column `c` of [`Eigen::vectors`] is the unit eigenvector of
/// `values[c]`, so `A = V·diag(values)·Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, aligned with `values`.
    pub vectors: SquareMatrix,
}

impl Eigen {
    /// Reconstructs `V·diag(values)·Vᵀ` (useful for testing and for PSD
    /// repair).
    pub fn reconstruct(&self) -> SquareMatrix {
        reconstruct_with(&self.vectors, &self.values)
    }

    /// Number of eigenvalues above `eps` in absolute value.
    pub fn rank(&self, eps: f64) -> usize {
        self.values.iter().filter(|v| v.abs() > eps).count()
    }
}

/// Rebuilds `V·diag(values)·Vᵀ` from eigenvectors and (possibly modified)
/// eigenvalues.
pub(crate) fn reconstruct_with(vectors: &SquareMatrix, values: &[f64]) -> SquareMatrix {
    let n = vectors.n();
    let mut out = SquareMatrix::zeros(n);
    for (c, &lambda) in values.iter().enumerate() {
        if lambda == 0.0 {
            continue;
        }
        for i in 0..n {
            let vi = vectors.get(i, c);
            if vi == 0.0 {
                continue;
            }
            for j in 0..n {
                let add = lambda * vi * vectors.get(j, c);
                out.set(i, j, out.get(i, j) + add);
            }
        }
    }
    out
}

/// Eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// * [`EigenError::NotSymmetric`] if the input asymmetry exceeds `1e-8`.
/// * [`EigenError::NoConvergence`] if 100 sweeps do not reduce the
///   off-diagonal below tolerance (practically unreachable for symmetric
///   input).
///
/// # Examples
///
/// ```
/// use kastio_linalg::{eigh, SquareMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = SquareMatrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = eigh(&a)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn eigh(a: &SquareMatrix) -> Result<Eigen, EigenError> {
    let n = a.n();
    if n == 0 {
        return Ok(Eigen { values: Vec::new(), vectors: SquareMatrix::zeros(0) });
    }
    let asym = max_asymmetry(a);
    let scale = a.frobenius_norm().max(1.0);
    if asym > 1e-8 * scale {
        return Err(EigenError::NotSymmetric { max_asymmetry: asym });
    }

    let mut m = a.clone();
    // Exact symmetrisation so rounding asymmetry cannot bias rotations.
    for i in 0..n {
        for j in i + 1..n {
            let v = 0.5 * (m.get(i, j) + m.get(j, i));
            m.set(i, j, v);
            m.set(j, i, v);
        }
    }
    let mut v = SquareMatrix::identity(n);
    let tol = 1e-12 * scale;
    let max_sweeps = 100;

    for _ in 0..max_sweeps {
        let off = off_diagonal_norm(&m);
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                rotate(&mut m, &mut v, p, q, c, s);
            }
        }
    }

    let off = off_diagonal_norm(&m);
    if off > (1e-7 * scale).max(1e-10) {
        return Err(EigenError::NoConvergence { off_diagonal: off });
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("eigenvalues are finite"));

    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = SquareMatrix::zeros(n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for i in 0..n {
            vectors.set(i, new_col, v.get(i, old_col));
        }
    }
    Ok(Eigen { values, vectors })
}

fn max_asymmetry(a: &SquareMatrix) -> f64 {
    let n = a.n();
    let mut max = 0.0f64;
    for i in 0..n {
        for j in i + 1..n {
            max = max.max((a.get(i, j) - a.get(j, i)).abs());
        }
    }
    max
}

fn off_diagonal_norm(m: &SquareMatrix) -> f64 {
    let n = m.n();
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let v = m.get(i, j);
                sum += v * v;
            }
        }
    }
    sum.sqrt()
}

fn rotate(m: &mut SquareMatrix, v: &mut SquareMatrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.n();
    for k in 0..n {
        let mkp = m.get(k, p);
        let mkq = m.get(k, q);
        m.set(k, p, c * mkp - s * mkq);
        m.set(k, q, s * mkp + c * mkq);
    }
    for k in 0..n {
        let mpk = m.get(p, k);
        let mqk = m.get(q, k);
        m.set(p, k, c * mpk - s * mqk);
        m.set(q, k, s * mpk + c * mqk);
    }
    for k in 0..n {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - s * vkq);
        v.set(k, q, s * vkp + c * vkq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = SquareMatrix::from_rows(vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = eigh(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn two_by_two_known_values() {
        let a = SquareMatrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = eigh(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 1.0, 1e-10);
        // Eigenvector of λ=3 is (1,1)/√2 up to sign.
        let v0 = (e.vectors.get(0, 0), e.vectors.get(1, 0));
        assert_close(v0.0.abs(), 1.0 / 2.0f64.sqrt(), 1e-10);
        assert_close(v0.0, v0.1, 1e-10);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = SquareMatrix::from_rows(vec![
            vec![4.0, 1.0, -2.0],
            vec![1.0, 2.0, 0.0],
            vec![-2.0, 0.0, 3.0],
        ]);
        let e = eigh(&a).unwrap();
        assert!(e.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = SquareMatrix::from_rows(vec![
            vec![5.0, 2.0, 1.0],
            vec![2.0, 6.0, 2.0],
            vec![1.0, 2.0, 7.0],
        ]);
        let e = eigh(&a).unwrap();
        let vtv = e.vectors.transpose().mul(&e.vectors);
        assert!(vtv.max_abs_diff(&SquareMatrix::identity(3)) < 1e-9);
    }

    #[test]
    fn indefinite_matrix_gets_negative_eigenvalue() {
        let a = SquareMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        let e = eigh(&a).unwrap();
        assert_close(e.values[0], 1.0, 1e-10);
        assert_close(e.values[1], -1.0, 1e-10);
        assert_eq!(e.rank(1e-9), 2);
    }

    #[test]
    fn asymmetric_input_is_rejected() {
        let a = SquareMatrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, 1.0]]);
        assert!(matches!(eigh(&a), Err(EigenError::NotSymmetric { .. })));
    }

    #[test]
    fn empty_matrix() {
        let e = eigh(&SquareMatrix::zeros(0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn one_by_one() {
        let a = SquareMatrix::from_rows(vec![vec![-4.5]]);
        let e = eigh(&a).unwrap();
        assert_eq!(e.values, vec![-4.5]);
        assert_eq!(e.vectors.get(0, 0), 1.0);
    }
}
