//! Dense symmetric linear algebra for kernel analysis.
//!
//! Everything §4.1 of the paper needs, from scratch:
//!
//! * [`SquareMatrix`] — dense square matrices.
//! * [`eigh`] — symmetric eigendecomposition (cyclic Jacobi) and
//!   [`eigh_ql`] (Householder tridiagonalisation + implicit QL), cross-
//!   validated against each other.
//! * [`center_gram`] — double centering for Kernel PCA.
//! * [`psd_repair`] — the paper's negative-eigenvalue clamping
//!   ("replaced by zero and the matrices rebuilt").
//! * [`KernelPca`] — projection onto the top kernel principal components
//!   (the scatter plots of Figures 6 and 8).
//!
//! # Examples
//!
//! ```
//! use kastio_linalg::{psd_repair, KernelPca, SquareMatrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gram = SquareMatrix::from_rows(vec![
//!     vec![1.0, 0.8, 0.0],
//!     vec![0.8, 1.0, 0.1],
//!     vec![0.0, 0.1, 1.0],
//! ]);
//! let repaired = psd_repair(&gram)?;
//! let pca = KernelPca::fit(&repaired.matrix, 2)?;
//! assert_eq!(pca.len(), 3);
//! # Ok(())
//! # }
//! ```

pub mod center;
pub mod jacobi;
pub mod kpca;
pub mod matrix;
pub mod psd;
pub mod tridiag;

pub use center::center_gram;
pub use jacobi::{eigh, Eigen, EigenError};
pub use kpca::{KernelPca, KpcaError};
pub use matrix::SquareMatrix;
pub use psd::{is_psd, psd_repair, PsdRepair};
pub use tridiag::eigh_ql;
