//! Householder tridiagonalisation + implicit-shift QL eigensolver.
//!
//! A second symmetric eigensolver beside the cyclic Jacobi of
//! [`crate::jacobi`]: reduce the matrix to tridiagonal form with
//! Householder reflections (O(n³) once), then diagonalise the tridiagonal
//! matrix with the implicit QL algorithm (O(n²) per eigenvalue). For the
//! paper-sized matrices both are instant; at a few hundred rows QL is
//! several times faster than Jacobi. The property tests cross-validate
//! the two solvers against each other.

use crate::jacobi::{Eigen, EigenError};
use crate::matrix::SquareMatrix;

/// Eigendecomposition via Householder + implicit QL.
///
/// Same contract as [`crate::eigh`]: eigenpairs sorted by descending
/// eigenvalue, orthonormal eigenvectors as columns.
///
/// # Errors
///
/// * [`EigenError::NotSymmetric`] if the input asymmetry is beyond
///   tolerance.
/// * [`EigenError::NoConvergence`] if QL needs more than 50 iterations
///   for some eigenvalue (practically unreachable).
///
/// # Examples
///
/// ```
/// use kastio_linalg::{eigh_ql, SquareMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = SquareMatrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = eigh_ql(&a)?;
/// assert!((eig.values[0] - 3.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn eigh_ql(a: &SquareMatrix) -> Result<Eigen, EigenError> {
    let n = a.n();
    if n == 0 {
        return Ok(Eigen { values: Vec::new(), vectors: SquareMatrix::zeros(0) });
    }
    let scale = a.frobenius_norm().max(1.0);
    let mut max_asym = 0.0f64;
    for i in 0..n {
        for j in i + 1..n {
            max_asym = max_asym.max((a.get(i, j) - a.get(j, i)).abs());
        }
    }
    if max_asym > 1e-8 * scale {
        return Err(EigenError::NotSymmetric { max_asymmetry: max_asym });
    }

    // Working copy; `z` accumulates the Householder transforms and later
    // the QL rotations, so its columns end up as eigenvectors.
    let mut z: Vec<Vec<f64>> =
        (0..n).map(|i| (0..n).map(|j| 0.5 * (a.get(i, j) + a.get(j, i))).collect()).collect();
    let mut diag = vec![0.0f64; n];
    let mut off = vec![0.0f64; n];

    tred2(&mut z, &mut diag, &mut off);
    tqli(&mut z, &mut diag, &mut off)?;

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| diag[y].partial_cmp(&diag[x]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&c| diag[c]).collect();
    let mut vectors = SquareMatrix::zeros(n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for (i, z_row) in z.iter().enumerate() {
            vectors.set(i, new_col, z_row[old_col]);
        }
    }
    Ok(Eigen { values, vectors })
}

/// Householder reduction to tridiagonal form (Numerical Recipes `tred2`).
/// On exit `z` holds the accumulated orthogonal transform, `diag` the
/// diagonal and `off` the subdiagonal (off[0] unused).
// Index loops mirror the published algorithm; iterator forms would obscure
// the simultaneous row/column accesses.
#[allow(clippy::needless_range_loop)]
fn tred2(z: &mut [Vec<f64>], diag: &mut [f64], off: &mut [f64]) {
    let n = z.len();
    for i in (1..n).rev() {
        let l = i; // columns 0..l participate
        let mut h = 0.0f64;
        if l > 1 {
            let scale: f64 = z[i][..l].iter().map(|v| v.abs()).sum();
            if scale == 0.0 {
                off[i] = z[i][l - 1];
            } else {
                for j in 0..l {
                    z[i][j] /= scale;
                    h += z[i][j] * z[i][j];
                }
                let mut f = z[i][l - 1];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                off[i] = scale * g;
                h -= f * g;
                z[i][l - 1] = f - g;
                let mut tau = 0.0f64;
                for j in 0..l {
                    z[j][i] = z[i][j] / h;
                    let mut g = 0.0;
                    // Lower triangle of the reduced matrix: row j up to
                    // the diagonal, then column j below it.
                    for k in 0..=j {
                        g += z[j][k] * z[i][k];
                    }
                    for k in j + 1..l {
                        g += z[k][j] * z[i][k];
                    }
                    off[j] = g / h;
                    tau += off[j] * z[i][j];
                }
                let hh = tau / (h + h);
                for j in 0..l {
                    f = z[i][j];
                    let g = off[j] - hh * f;
                    off[j] = g;
                    for k in 0..=j {
                        z[j][k] -= f * off[k] + g * z[i][k];
                    }
                }
            }
        } else {
            off[i] = z[i][l - 1];
        }
        diag[i] = h;
    }
    diag[0] = 0.0;
    off[0] = 0.0;
    for i in 0..n {
        if diag[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[i][k] * z[k][j];
                }
                for z_k in z.iter_mut().take(i) {
                    z_k[j] -= g * z_k[i];
                }
            }
        }
        diag[i] = z[i][i];
        z[i][i] = 1.0;
        for z_k in z.iter_mut().take(i) {
            z_k[i] = 0.0;
        }
        for j in 0..i {
            z[i][j] = 0.0;
        }
    }
}

/// Implicit-shift QL on a tridiagonal matrix (Numerical Recipes `tqli`),
/// accumulating rotations into `z`.
fn tqli(z: &mut [Vec<f64>], diag: &mut [f64], off: &mut [f64]) -> Result<(), EigenError> {
    let n = diag.len();
    // Shift the subdiagonal left: off[0..n-1] holds e_1..e_{n-1}.
    for i in 1..n {
        off[i - 1] = off[i];
    }
    off[n - 1] = 0.0;

    for l in 0..n {
        let mut iterations = 0;
        loop {
            // Find a small subdiagonal split point m ≥ l.
            let mut m = l;
            while m + 1 < n {
                let dd = diag[m].abs() + diag[m + 1].abs();
                if off[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iterations += 1;
            if iterations > 50 {
                return Err(EigenError::NoConvergence { off_diagonal: off[l].abs() });
            }
            // Implicit shift from the 2×2 block at l.
            let mut g = (diag[l + 1] - diag[l]) / (2.0 * off[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = diag[m] - diag[l] + off[l] / (g + sign_r);
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * off[i];
                let b = c * off[i];
                r = f.hypot(g);
                off[i + 1] = r;
                if r == 0.0 {
                    diag[i + 1] -= p;
                    off[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = diag[i + 1] - p;
                r = (diag[i] - g) * s + 2.0 * c * b;
                p = s * r;
                diag[i + 1] = g + p;
                g = c * r - b;
                for z_k in z.iter_mut() {
                    f = z_k[i + 1];
                    z_k[i + 1] = s * z_k[i] + c * f;
                    z_k[i] = c * z_k[i] - s * f;
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            diag[l] -= p;
            off[l] = g;
            off[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::eigh;

    fn cross_validate(a: &SquareMatrix) {
        let ql = eigh_ql(a).expect("ql succeeds");
        let jac = eigh(a).expect("jacobi succeeds");
        let tol = 1e-8 * a.frobenius_norm().max(1.0);
        for (x, y) in ql.values.iter().zip(&jac.values) {
            assert!((x - y).abs() < tol, "eigenvalue mismatch: {x} vs {y}");
        }
        // Reconstruction and orthonormality.
        assert!(ql.reconstruct().max_abs_diff(a) < tol * 10.0);
        let vtv = ql.vectors.transpose().mul(&ql.vectors);
        assert!(vtv.max_abs_diff(&SquareMatrix::identity(a.n())) < 1e-8);
    }

    #[test]
    fn two_by_two() {
        cross_validate(&SquareMatrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]));
    }

    #[test]
    fn indefinite_three_by_three() {
        cross_validate(&SquareMatrix::from_rows(vec![
            vec![0.0, 1.0, -2.0],
            vec![1.0, 2.0, 0.5],
            vec![-2.0, 0.5, -3.0],
        ]));
    }

    #[test]
    fn diagonal_matrix() {
        let a = SquareMatrix::from_rows(vec![
            vec![5.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = eigh_ql(&a).unwrap();
        assert_eq!(e.values, vec![5.0, 2.0, -1.0]);
        cross_validate(&a);
    }

    #[test]
    fn repeated_eigenvalues() {
        cross_validate(&SquareMatrix::from_rows(vec![
            vec![2.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]));
    }

    #[test]
    fn larger_structured_matrix() {
        let n = 12;
        let a = SquareMatrix::from_fn_sym(n, |i, j| {
            if i == j {
                (i + 1) as f64
            } else {
                1.0 / ((i + j + 2) as f64)
            }
        });
        cross_validate(&a);
    }

    #[test]
    fn empty_and_single() {
        assert!(eigh_ql(&SquareMatrix::zeros(0)).unwrap().values.is_empty());
        let one = SquareMatrix::from_rows(vec![vec![-7.5]]);
        assert_eq!(eigh_ql(&one).unwrap().values, vec![-7.5]);
    }

    #[test]
    fn rejects_asymmetric_input() {
        let a = SquareMatrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, 1.0]]);
        assert!(matches!(eigh_ql(&a), Err(EigenError::NotSymmetric { .. })));
    }
}
