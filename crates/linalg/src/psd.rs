//! PSD repair: the paper's negative-eigenvalue clamping.
//!
//! §4.1: "If the matrices presented negative eigenvalues, they were
//! replaced by zero and the matrices rebuilt." The Kast kernel's feature
//! space is pair-dependent, so its similarity matrices are not guaranteed
//! positive semi-definite — this is the standard spectral-clipping fix.

use crate::jacobi::{eigh, reconstruct_with, EigenError};
use crate::matrix::SquareMatrix;

/// The outcome of [`psd_repair`].
#[derive(Debug, Clone, PartialEq)]
pub struct PsdRepair {
    /// The repaired (positive semi-definite) matrix.
    pub matrix: SquareMatrix,
    /// How many eigenvalues were clamped to zero.
    pub clamped: usize,
    /// The most negative eigenvalue found (0 if none were negative).
    pub most_negative: f64,
}

/// Clamps negative eigenvalues of a symmetric matrix to zero and rebuilds
/// it (`V·max(Λ,0)·Vᵀ`).
///
/// # Errors
///
/// Propagates [`EigenError`] if the input is not symmetric or the
/// eigensolver fails to converge.
///
/// # Examples
///
/// ```
/// use kastio_linalg::{psd_repair, SquareMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let indefinite = SquareMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
/// let repair = psd_repair(&indefinite)?;
/// assert_eq!(repair.clamped, 1);
/// assert!(repair.most_negative < 0.0);
/// # Ok(())
/// # }
/// ```
pub fn psd_repair(a: &SquareMatrix) -> Result<PsdRepair, EigenError> {
    let eig = eigh(a)?;
    // Eigenvalues within numerical noise of zero are treated as zero
    // without counting as clamped — otherwise repairing a repaired matrix
    // would report phantom negative eigenvalues.
    let scale = eig.values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let tol = 1e-10 * scale.max(1.0);
    let mut clamped = 0;
    let mut most_negative = 0.0f64;
    let values: Vec<f64> = eig
        .values
        .iter()
        .map(|&v| {
            if v < -tol {
                clamped += 1;
                most_negative = most_negative.min(v);
                0.0
            } else {
                v.max(0.0)
            }
        })
        .collect();
    if clamped == 0 {
        return Ok(PsdRepair { matrix: a.clone(), clamped: 0, most_negative: 0.0 });
    }
    let matrix = reconstruct_with(&eig.vectors, &values);
    Ok(PsdRepair { matrix, clamped, most_negative })
}

/// Whether a symmetric matrix is positive semi-definite within `tol`.
///
/// # Errors
///
/// Propagates [`EigenError`] from the eigendecomposition.
pub fn is_psd(a: &SquareMatrix, tol: f64) -> Result<bool, EigenError> {
    let eig = eigh(a)?;
    Ok(eig.values.iter().all(|&v| v >= -tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psd_input_is_returned_unchanged() {
        let a = SquareMatrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        let r = psd_repair(&a).unwrap();
        assert_eq!(r.clamped, 0);
        assert_eq!(r.matrix, a);
        assert!(is_psd(&a, 1e-12).unwrap());
    }

    #[test]
    fn indefinite_matrix_becomes_psd() {
        let a = SquareMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(!is_psd(&a, 1e-12).unwrap());
        let r = psd_repair(&a).unwrap();
        assert_eq!(r.clamped, 1);
        assert!((r.most_negative + 1.0).abs() < 1e-10);
        assert!(is_psd(&r.matrix, 1e-10).unwrap());
        // Clipping λ=-1 of [[0,1],[1,0]] yields 0.5·[[1,1],[1,1]].
        let expected = SquareMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]);
        assert!(r.matrix.max_abs_diff(&expected) < 1e-10);
    }

    #[test]
    fn repair_preserves_symmetry() {
        let a = SquareMatrix::from_rows(vec![
            vec![1.0, 0.9, -0.8],
            vec![0.9, 1.0, 0.4],
            vec![-0.8, 0.4, 1.0],
        ]);
        let r = psd_repair(&a).unwrap();
        assert!(r.matrix.is_symmetric(1e-9));
        assert!(is_psd(&r.matrix, 1e-9).unwrap());
    }

    #[test]
    fn asymmetric_input_errors() {
        let a = SquareMatrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, 1.0]]);
        assert!(psd_repair(&a).is_err());
    }
}
