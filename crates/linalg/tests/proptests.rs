//! Property tests for the linear-algebra layer on random symmetric
//! matrices.

use proptest::prelude::*;

use kastio_linalg::{center_gram, eigh, eigh_ql, is_psd, psd_repair, KernelPca, SquareMatrix};

fn arb_symmetric(max_n: usize) -> impl Strategy<Value = SquareMatrix> {
    (1..=max_n)
        .prop_flat_map(|n| {
            proptest::collection::vec(-10.0f64..10.0, n * n).prop_map(move |data| {
                let raw = SquareMatrix::from_row_major(n, data);
                let mut sym = SquareMatrix::zeros(n);
                for i in 0..n {
                    for j in 0..n {
                        sym.set(i, j, 0.5 * (raw.get(i, j) + raw.get(j, i)));
                    }
                }
                sym
            })
        })
        .prop_filter("finite", |m| m.as_slice().iter().all(|v| v.is_finite()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eigh_reconstructs_the_input(m in arb_symmetric(7)) {
        let eig = eigh(&m).expect("symmetric input");
        let tol = 1e-7 * m.frobenius_norm().max(1.0);
        prop_assert!(eig.reconstruct().max_abs_diff(&m) < tol);
    }

    #[test]
    fn eigenvectors_are_orthonormal(m in arb_symmetric(7)) {
        let eig = eigh(&m).expect("symmetric input");
        let vtv = eig.vectors.transpose().mul(&eig.vectors);
        prop_assert!(vtv.max_abs_diff(&SquareMatrix::identity(m.n())) < 1e-8);
    }

    #[test]
    fn eigenvalues_are_sorted_and_match_trace(m in arb_symmetric(7)) {
        let eig = eigh(&m).expect("symmetric input");
        for w in eig.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        // Trace = sum of eigenvalues.
        let trace: f64 = (0..m.n()).map(|i| m.get(i, i)).sum();
        let sum: f64 = eig.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * trace.abs().max(1.0));
    }

    #[test]
    fn jacobi_and_ql_solvers_agree(m in arb_symmetric(8)) {
        let jac = eigh(&m).expect("symmetric input");
        let ql = eigh_ql(&m).expect("symmetric input");
        let tol = 1e-7 * m.frobenius_norm().max(1.0);
        for (a, b) in jac.values.iter().zip(&ql.values) {
            prop_assert!((a - b).abs() < tol, "eigenvalues diverge: {} vs {}", a, b);
        }
        prop_assert!(ql.reconstruct().max_abs_diff(&m) < tol * 10.0);
        let vtv = ql.vectors.transpose().mul(&ql.vectors);
        prop_assert!(vtv.max_abs_diff(&SquareMatrix::identity(m.n())) < 1e-7);
    }

    #[test]
    fn psd_repair_always_yields_psd(m in arb_symmetric(7)) {
        let repair = psd_repair(&m).expect("symmetric input");
        prop_assert!(is_psd(&repair.matrix, 1e-7).expect("repaired is symmetric"));
        prop_assert!(repair.matrix.is_symmetric(1e-8));
        // Repair is idempotent.
        let again = psd_repair(&repair.matrix).expect("still symmetric");
        prop_assert_eq!(again.clamped, 0);
        // Positive part of the spectrum is untouched: eigenvalue sums match.
        let before: f64 = eigh(&m).unwrap().values.iter().filter(|&&v| v > 0.0).sum();
        let after: f64 = eigh(&repair.matrix).unwrap().values.iter().sum();
        prop_assert!((before - after).abs() < 1e-6 * before.abs().max(1.0));
    }

    #[test]
    fn centering_annihilates_row_sums(m in arb_symmetric(7)) {
        let c = center_gram(&m);
        for i in 0..c.n() {
            let sum: f64 = c.row(i).iter().sum();
            prop_assert!(sum.abs() < 1e-9 * m.frobenius_norm().max(1.0));
        }
        prop_assert!(c.is_symmetric(1e-9));
    }

    #[test]
    fn kpca_coordinates_reproduce_centred_kernel_distances(m in arb_symmetric(6)) {
        // Use a PSD version of the matrix so the full projection is exact.
        let psd = psd_repair(&m).expect("symmetric").matrix;
        let n = psd.n();
        match KernelPca::fit(&psd, n) {
            Ok(pca) => {
                let centred = center_gram(&psd);
                for i in 0..n {
                    for j in 0..n {
                        let d_kernel =
                            centred.get(i, i) + centred.get(j, j) - 2.0 * centred.get(i, j);
                        let d_coords: f64 = pca
                            .coords(i)
                            .iter()
                            .zip(pca.coords(j))
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        prop_assert!(
                            (d_kernel - d_coords).abs() < 1e-6 * d_kernel.abs().max(1.0),
                            "({i},{j}): {d_kernel} vs {d_coords}"
                        );
                    }
                }
            }
            Err(_) => {
                // Degenerate spectrum (e.g. constant matrix) is allowed.
            }
        }
    }

    #[test]
    fn matrix_algebra_basics(m in arb_symmetric(6)) {
        let n = m.n();
        let i = SquareMatrix::identity(n);
        prop_assert_eq!(m.mul(&i), m.clone());
        prop_assert_eq!(m.transpose(), m.clone(), "symmetric matrices are self-transpose");
        let v = vec![1.0; n];
        let mv = m.mul_vec(&v);
        for (row, out) in mv.iter().enumerate() {
            let expect: f64 = m.row(row).iter().sum();
            prop_assert!((out - expect).abs() < 1e-9);
        }
    }
}
