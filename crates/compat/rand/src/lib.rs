//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The kastio build environment has no access to crates.io, so this crate
//! provides the exact API subset the workspace uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], uniform ranges — with the same module
//! paths, so `use rand::{Rng, SeedableRng};` compiles unchanged against
//! either this shim or the real crate.
//!
//! The generator is xoshiro256** seeded through SplitMix64. It is
//! deterministic, fast and statistically solid for test-data generation;
//! it is **not** cryptographically secure, and its stream differs from the
//! real `rand::rngs::StdRng` (ChaCha12) — swapping in the registry crate
//! changes every seed-derived output (see the note in the root
//! `Cargo.toml`).

/// Core trait for generators: produce the next 64 random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from seed material, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution (uniform over the
/// type's domain; `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can drive [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform sampling over `[0, bound)` without modulo bias, via Lemire's
/// multiply-shift rejection method.
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not
    /// cryptographically secure, but for synthetic-workload generation
    /// only statistical quality and determinism matter.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
