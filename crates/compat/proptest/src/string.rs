//! String generation from a small regex subset.
//!
//! The workspace's tests use patterns like `"[a-z][a-z0-9_]{0,8}"` and
//! `"[a-z]{1,6}"` as strategies. This module supports exactly that
//! family: a sequence of atoms, each an escaped/literal character or a
//! character class `[...]` (with `a-z` ranges), followed by an optional
//! quantifier `{m}`, `{m,n}`, `?`, `*` or `+` (`*`/`+` capped at 8
//! repetitions). Anchors, alternation, groups and negated classes are
//! not supported and panic loudly.

use rand::rngs::StdRng;
use rand::Rng;

/// Open-ended quantifiers (`*`, `+`) repeat at most this many times.
const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug)]
struct Atom {
    /// Candidate characters for this position.
    choices: Vec<char>,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics if `pattern` uses regex features outside the supported subset.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let reps = rng.gen_range(atom.min..=atom.max);
        for _ in 0..reps {
            let i = rng.gen_range(0..atom.choices.len());
            out.push(atom.choices[i]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let (set, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                set
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).unwrap_or_else(|| unsupported(pattern, "trailing backslash"));
                i += 1;
                vec![c]
            }
            '(' | ')' | '|' | '^' | '$' | '.' => {
                unsupported(pattern, "groups, alternation, anchors and '.'")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max, next) = parse_quantifier(pattern, &chars, i);
        i = next;
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    if chars.get(i) == Some(&'^') {
        unsupported(pattern, "negated character classes");
    }
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = chars[i];
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let hi = chars[i + 2];
            assert!(lo <= hi, "invalid class range {lo}-{hi} in {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(lo);
            i += 1;
        }
    }
    if i >= chars.len() {
        unsupported(pattern, "unterminated character class");
    }
    assert!(!set.is_empty(), "empty character class in {pattern:?}");
    (set, i + 1)
}

fn parse_quantifier(pattern: &str, chars: &[char], i: usize) -> (u32, u32, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, UNBOUNDED_CAP, i + 1),
        Some('+') => (1, UNBOUNDED_CAP, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|off| i + off)
                .unwrap_or_else(|| unsupported(pattern, "unterminated quantifier"));
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier repeat count");
                    (n, n)
                }
            };
            assert!(min <= max, "empty quantifier {{{body}}} in {pattern:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn unsupported(pattern: &str, feature: &str) -> ! {
    panic!(
        "string strategy {pattern:?}: {feature} are not supported by the \
         offline proptest shim (see crates/compat/proptest)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identifier_pattern_shapes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.chars().count()), "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn exact_and_banded_quantifiers() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..200 {
            assert_eq!(generate("[a-c]{3}", &mut rng).len(), 3);
            let banded = generate("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&banded.len()));
            let maybe = generate("x?", &mut rng);
            assert!(maybe.is_empty() || maybe == "x");
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(generate("abc", &mut rng), "abc");
        assert_eq!(generate(r"a\[b", &mut rng), "a[b");
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn alternation_panics() {
        let mut rng = StdRng::seed_from_u64(12);
        generate("a|b", &mut rng);
    }
}
