//! Test execution: configuration, case errors and the runner.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Runner configuration. Mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Maximum [`TestCaseError::Reject`]s (from [`crate::prop_assume!`])
    /// summed over the whole run — not consecutive — before the test
    /// errors out, matching the real crate's global-reject semantics.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 1024 }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case disproves the property.
    Fail(String),
    /// The case does not apply (e.g. a failed [`crate::prop_assume!`]);
    /// another is generated in its place.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given explanation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection with the given explanation.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "case failed: {reason}"),
            TestCaseError::Reject(reason) => write!(f, "case rejected: {reason}"),
        }
    }
}

/// A whole property test's failure, with the input that disproved it.
#[derive(Debug, Clone)]
pub struct TestError {
    case: u32,
    reason: String,
    input: String,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "property failed at case {}: {}\n  input: {}\n  (no shrinking: \
             this input may not be minimal; seed is fixed, so the run replays)",
            self.case, self.reason, self.input
        )
    }
}

impl std::error::Error for TestError {}

/// Seed used when `PROPTEST_SEED` is not set. Arbitrary but fixed:
/// every run generates the same cases.
const DEFAULT_SEED: u64 = 0x6B61_7374_696F_2131;

/// Generates inputs and drives test closures. Mirrors
/// `proptest::test_runner::TestRunner`, without shrinking.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    /// A runner seeded from `PROPTEST_SEED` (if set and parseable as
    /// `u64`) or the fixed default seed.
    pub fn new(config: ProptestConfig) -> Self {
        Self::with_seed_salt(config, 0)
    }

    /// A runner whose seed is additionally salted with the test name, so
    /// different tests in one file explore different sequences.
    pub fn new_for_test(config: ProptestConfig, test_name: &str) -> Self {
        let salt = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
        });
        Self::with_seed_salt(config, salt)
    }

    fn with_seed_salt(config: ProptestConfig, salt: u64) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        TestRunner { config, rng: StdRng::seed_from_u64(base ^ salt) }
    }

    /// Runs `test` against `config.cases` generated inputs. Returns the
    /// first failure (assertion, panic) or `Ok(())` if every case passes.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
    where
        S: Strategy,
        S::Value: fmt::Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut case = 0;
        let mut rejects = 0;
        while case < self.config.cases {
            let value = strategy.new_value(&mut self.rng);
            let input = format!("{value:?}");
            match catch_unwind(AssertUnwindSafe(|| test(value))) {
                Ok(Ok(())) => case += 1,
                Ok(Err(TestCaseError::Reject(reason))) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        return Err(TestError {
                            case,
                            reason: format!("too many rejected cases ({rejects}); last: {reason}"),
                            input,
                        });
                    }
                }
                Ok(Err(TestCaseError::Fail(reason))) => {
                    return Err(TestError { case, reason, input })
                }
                Err(panic) => {
                    let reason = if let Some(s) = panic.downcast_ref::<&str>() {
                        format!("panic: {s}")
                    } else if let Some(s) = panic.downcast_ref::<String>() {
                        format!("panic: {s}")
                    } else {
                        String::from("panic with non-string payload")
                    };
                    return Err(TestError { case, reason, input });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(50));
        let mut seen = 0;
        runner
            .run(&(0u64..100), |v| {
                assert!(v < 100);
                seen += 1;
                Ok(())
            })
            .expect("property holds");
        assert_eq!(seen, 50);
    }

    #[test]
    fn failing_property_reports_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(500));
        let err = runner
            .run(
                &(0u64..100),
                |v| if v >= 90 { Err(TestCaseError::fail("too big")) } else { Ok(()) },
            )
            .expect_err("must eventually draw >= 90");
        let msg = err.to_string();
        assert!(msg.contains("too big"), "message: {msg}");
    }

    #[test]
    fn panics_are_captured() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        let err =
            runner.run(&(0u64..10), |_| panic!("boom")).expect_err("panics fail the property");
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn rejects_regenerate_without_consuming_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(20));
        let mut passed = 0;
        runner
            .run(&(0u64..100), |v| {
                if v % 2 == 1 {
                    Err(TestCaseError::reject("odd"))
                } else {
                    passed += 1;
                    Ok(())
                }
            })
            .expect("even cases pass");
        assert_eq!(passed, 20);
    }
}
