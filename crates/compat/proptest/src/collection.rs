//! Collection strategies: `proptest::collection::vec`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive size band for generated collections. Mirrors
/// `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange { lo: range.start, hi: range.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange { lo: *range.start(), hi: *range.end() }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`. Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn length_bands_are_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let ranged = vec(0u8..10, 2..5);
        let exact = vec(0u8..10, 3usize);
        for _ in 0..200 {
            let r = ranged.new_value(&mut rng);
            assert!((2..5).contains(&r.len()), "len {} outside 2..5", r.len());
            assert_eq!(exact.new_value(&mut rng).len(), 3);
        }
    }
}
