//! Sampling strategies: `proptest::sample::select`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A strategy yielding clones of uniformly chosen elements of `items`.
/// Mirrors `proptest::sample::select`.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "sample::select needs at least one item");
    Select(items)
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0[rng.gen_range(0..self.0.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn select_draws_only_given_items() {
        let mut rng = StdRng::seed_from_u64(21);
        let strat = select(vec![[1usize, 2], [3, 4]]);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!(v == [1, 2] || v == [3, 4]);
        }
    }
}
