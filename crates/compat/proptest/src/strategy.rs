//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// How many times [`Filter`] retries before giving up on a predicate.
const MAX_FILTER_TRIES: usize = 1_000;

/// A recipe for generating values of one type. Mirrors
/// `proptest::strategy::Strategy`, without shrinking.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, then generates the final value
    /// from the strategy `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Discards generated values failing the predicate, retrying until
    /// one passes.
    ///
    /// # Panics
    ///
    /// Panics (citing `reason`) if no value passes after 1000 attempts.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter { source: self, reason: reason.into(), pred: Box::new(pred) }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value. Mirrors
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// A boxed predicate over generated values, as stored by [`Filter`].
type Predicate<T> = Box<dyn Fn(&T) -> bool>;

/// See [`Strategy::prop_filter`].
pub struct Filter<S: Strategy> {
    source: S,
    reason: String,
    pred: Predicate<S::Value>,
}

impl<S: Strategy> Strategy for Filter<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let value = self.source.new_value(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter: predicate \"{}\" rejected {} consecutive values",
            self.reason, MAX_FILTER_TRIES
        );
    }
}

/// A type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value(rng)
    }
}

/// Uniformly picks one of several boxed strategies per generated value.
/// The engine behind [`crate::prop_oneof!`].
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let arm = rng.gen_range(0..self.0.len());
        self.0[arm].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String literals act as regex-shaped string strategies
/// (e.g. `"[a-z][a-z0-9_]{0,8}"`); see [`crate::string`] for the
/// supported subset.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn combinators_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (0u64..10)
            .prop_map(|v| v * 2)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_flat_map(|v| v..v + 3);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!(v < 21);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), (5u8..7).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            match strat.new_value(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                5 => seen[2] = true,
                6 => seen[3] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s), "all arms reached: {seen:?}");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = (0u8..4, Just("x"), -2i64..=2);
        for _ in 0..100 {
            let (a, b, c) = strat.new_value(&mut rng);
            assert!(a < 4);
            assert_eq!(b, "x");
            assert!((-2..=2).contains(&c));
        }
    }
}
