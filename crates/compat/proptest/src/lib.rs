//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The kastio build environment has no access to crates.io, so this crate
//! reimplements the API subset the workspace's property tests use, with
//! the same module paths and macro names:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`,
//!   `prop_filter` and `boxed`
//! * strategies for integer/float ranges, tuples, [`strategy::Just`],
//!   [`strategy::Union`] (behind [`prop_oneof!`]) and simple regex string
//!   patterns (character classes + quantifiers)
//! * [`collection::vec`] with exact or ranged sizes
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`] macros over a deterministic [`test_runner::TestRunner`]
//!
//! Differences from the real crate: cases are generated from a fixed seed
//! (override with the `PROPTEST_SEED` environment variable) and failing
//! inputs are reported but **not shrunk**. For a reproduction pipeline
//! whose tests assert mathematical invariants, deterministic replay
//! matters more than minimal counterexamples.

pub mod strategy;

pub mod collection;

pub mod sample;

pub mod test_runner;

pub mod string;

/// The glob-import surface used by the tests:
/// `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Mirrors `proptest::proptest!`.
///
/// Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new_for_test(config, stringify!($name));
            let strategy = ($($strategy,)+);
            let outcome = runner.run(&strategy, |($($parm,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(err) = outcome {
                ::core::panic!("{}", err);
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Fails the current test case with a message if the condition is false.
/// Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case if the two expressions are unequal.
/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current test case (it is regenerated, not failed) if the
/// condition is false. Mirrors `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Uniformly picks one of several strategies with a common value type.
/// Mirrors `proptest::prop_oneof!` (without arm weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
