//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The kastio build environment has no access to crates.io, so this crate
//! mirrors the criterion API surface used by `crates/bench/benches/*`
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! [`criterion_group!`]/[`criterion_main!`]) over a deliberately simple
//! wall-clock harness: each benchmark is warmed up, then timed over a
//! fixed number of batches, and the median batch time is printed.
//! Statistical machinery (outlier classification, bootstrap confidence
//! intervals, HTML reports) is out of scope — swap in the real crate for
//! publication-quality numbers.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Applies command-line configuration. The shim accepts and ignores
    /// all arguments (criterion filters benchmarks here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.render(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, self.effective_sample_size(), f);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, self.effective_sample_size(), |b| f(b, input));
        self
    }

    /// Finishes the group. The shim keeps no cross-group state; this
    /// exists for API compatibility.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, an optional parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { function: Some(name.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { function: Some(name), parameter: None }
    }
}

/// Timer handle passed to benchmark closures, mirroring
/// `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Per-batch iteration count fixed by the warm-up run; `None` means
    /// this run calibrates it.
    calibrated: Option<u64>,
    batch: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, amortised over the calibrated number of
    /// iterations per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if let Some(iters) = self.calibrated {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.batch = Some((iters, start.elapsed()));
            return;
        }
        // Calibrate: grow the iteration count until one batch takes
        // a measurable amount of time (>= ~1 ms) or gets large.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.batch = Some((iters, elapsed));
                return;
            }
            iters *= 2;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up run; it also calibrates the per-batch iteration count the
    // timed samples below reuse.
    let mut warmup = Bencher::default();
    f(&mut warmup);
    let calibrated = warmup.batch.map(|(iters, _)| iters);
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { calibrated, batch: None };
        f(&mut bencher);
        if let Some((iters, elapsed)) = bencher.batch {
            per_iter.push(elapsed.as_secs_f64() / iters as f64);
        }
    }
    if per_iter.is_empty() {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
        return;
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{label:<48} median {} (min {}, max {}, n={})",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        per_iter.len()
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim");
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("kast", 3).render(), "kast/3");
        assert_eq!(BenchmarkId::from_parameter(8).render(), "8");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
