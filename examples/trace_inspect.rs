//! Walk the paper's two-stage conversion on a hand-written trace file:
//! parse → tree → compressed tree → weighted string, in both byte modes.
//!
//! Run with `cargo run --example trace_inspect`.

use kastio::{build_tree, compress_tree, flatten_tree, parse_trace, ByteMode, CompressOptions};

const TRACE: &str = "\
# two interleaved handles, as in Figure 1 of the paper
h0 open 0
h0 write 100
h0 write 100
h0 write 100
h1 open 0
h1 fileno 0
h1 lseek 0
h1 write 8
h1 lseek 0
h1 write 8
h1 lseek 0
h1 write 8
h1 close 0
h0 write 200
h0 close 0
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = parse_trace(TRACE)?;
    println!("parsed {} operations over {} handles\n", trace.len(), trace.handles().len());

    for mode in [ByteMode::Preserve, ByteMode::Ignore] {
        println!("=== byte mode {mode:?} ===");
        let raw = build_tree(&trace, mode);
        println!("uncompressed tree: {} leaves, mass {}", raw.leaf_count(), raw.mass());
        for handle in &raw.handles {
            for (b, block) in handle.blocks.iter().enumerate() {
                let ops: Vec<String> =
                    block.ops.iter().map(|o| format!("{}x{}", o.literal, o.reps)).collect();
                println!("  {} block{}: {}", handle.handle, b, ops.join(" "));
            }
        }

        let mut tree = raw.clone();
        compress_tree(&mut tree, &CompressOptions::default());
        println!("compressed tree:   {} leaves, mass {}", tree.leaf_count(), tree.mass());
        for handle in &tree.handles {
            for (b, block) in handle.blocks.iter().enumerate() {
                let ops: Vec<String> =
                    block.ops.iter().map(|o| format!("{}x{}", o.literal, o.reps)).collect();
                println!("  {} block{}: {}", handle.handle, b, ops.join(" "));
            }
        }
        assert_eq!(raw.mass(), tree.mass(), "compression preserves mass");

        let string = flatten_tree(&tree);
        println!("weighted string:   {string}");
        println!("string weight:     {}\n", string.total_weight());
    }
    Ok(())
}
