//! The Kast kernel's embedding is inspectable: every feature is a shared
//! substring. This example prints *why* two access patterns are similar.
//!
//! Run with `cargo run --example explain_similarity`.

use kastio::pattern::explain::explain_similarity;
use kastio::workloads::generators::{flash_io, FlashIoParams};
use kastio::{pattern_string, ByteMode, KastKernel, KastOptions, TokenInterner};

fn main() {
    // Two FLASH-style checkpointers: same record structure, different run
    // shapes.
    let small = flash_io(&FlashIoParams { files: 3, blocks: 16, ..FlashIoParams::default() });
    let large = flash_io(&FlashIoParams { files: 5, blocks: 28, ..FlashIoParams::default() });

    let mut interner = TokenInterner::new();
    let a = interner.intern_string(&pattern_string(&small, ByteMode::Preserve));
    let b = interner.intern_string(&pattern_string(&large, ByteMode::Preserve));

    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let report = explain_similarity(&kernel, &a, &b, &interner);

    println!("why are these two checkpoint patterns similar?\n");
    println!("{report}");
    println!("columns: contribution share, weight in A · weight in B, shared substring\n");

    let top = &report.top(1)[0];
    println!(
        "dominant evidence: `{}` ({} appearance(s) in A, {} in B) carries {:.1}% \
         of the kernel value",
        top.literal,
        top.appearances.0,
        top.appearances.1,
        top.share * 100.0
    );
    assert!(report.normalized > 0.5);
}
