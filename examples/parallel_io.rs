//! Parallel I/O patterns: how IOR's two file layouts — file-per-process
//! and shared-file — look through the paper's representation, and how the
//! Kast kernel scores them across scales.
//!
//! Run with `cargo run --example parallel_io`.

use kastio::trace::HandleMerge;
use kastio::workloads::generators::{ior_parallel, IorParams};
use kastio::{pattern_string, ByteMode, KastKernel, KastOptions, StringKernel, TokenInterner};

fn main() {
    let params = IorParams::default();
    let mut interner = TokenInterner::new();
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));

    // Render the two layouts at 4 ranks.
    let job = ior_parallel(&params, 4);
    for (name, merge) in [
        ("file-per-process", HandleMerge::FilePerProcess),
        ("shared-file", HandleMerge::SharedFile),
    ] {
        let trace = job.merge(merge);
        let s = pattern_string(&trace, ByteMode::Preserve);
        println!("{name:<17} ({} handles): {s}", trace.handles().len());
    }
    println!();

    // Similarity across scales: the same layout at different rank counts
    // should stay recognisable; the two layouts should differ.
    let layouts = [
        ("fpp@2", HandleMerge::FilePerProcess, 2usize),
        ("fpp@8", HandleMerge::FilePerProcess, 8),
        ("shared@2", HandleMerge::SharedFile, 2),
        ("shared@8", HandleMerge::SharedFile, 8),
    ];
    let strings: Vec<_> = layouts
        .iter()
        .map(|(_, merge, ranks)| {
            let trace = ior_parallel(&params, *ranks).merge(*merge);
            interner.intern_string(&pattern_string(&trace, ByteMode::Preserve))
        })
        .collect();

    println!("pairwise normalised Kast similarity:");
    print!("{:>10}", "");
    for (name, _, _) in &layouts {
        print!(" {name:>9}");
    }
    println!();
    for (i, (name, _, _)) in layouts.iter().enumerate() {
        print!("{name:>10}");
        for j in 0..layouts.len() {
            print!(" {:>9.4}", kernel.normalized(&strings[i], &strings[j]));
        }
        println!();
    }

    let fpp_scale = kernel.normalized(&strings[0], &strings[1]);
    let cross = kernel.normalized(&strings[0], &strings[3]);
    assert!(fpp_scale > cross, "the same layout at different scales beats different layouts");
    println!("\nfile-per-process at 2 vs 8 ranks: {fpp_scale:.4}");
    println!("file-per-process vs shared-file : {cross:.4}");
    println!("=> scale changes the pattern less than the file layout does");
}
