//! The serve/query wire protocol, self-contained: starts the daemon on an
//! ephemeral port inside this process, then drives a full client session
//! (INGEST → BATCH INGEST → QUERY → MQUERY → STATS → SHUTDOWN) and prints
//! the transcript — the same exchange `kastio serve` / `kastio query`
//! perform across processes. See docs/PROTOCOL.md for the wire spec.
//!
//! ```sh
//! cargo run --example serve_query
//! ```

use std::io::{BufReader, Write};
use std::net::TcpStream;

use kastio::index::protocol::{encode_trace_inline, read_reply};
use kastio::workloads::generators::{flash_io, random_posix, FlashIoParams, RandomPosixParams};
use kastio::{IndexOptions, PatternIndex, Server};

fn send(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &str) {
    println!("> {request}");
    stream.write_all(format!("{request}\n").as_bytes()).expect("request sent");
    stream.flush().expect("request flushed");
    for line in read_reply(reader).expect("reply read").lines() {
        println!("< {line}");
    }
}

fn main() -> std::io::Result<()> {
    let opts = IndexOptions { shards: 2, ..IndexOptions::default() };
    let server = Server::bind("127.0.0.1:0", PatternIndex::new(opts))?;
    let addr = server.local_addr()?;
    println!("# kastio serve listening on {addr}");
    let daemon = std::thread::spawn(move || server.serve().expect("daemon runs"));

    let mut stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let checkpoint = flash_io(&FlashIoParams { files: 2, blocks: 10, ..Default::default() });
    let mix = random_posix(
        &RandomPosixParams { write_iterations: 8, read_iterations: 8, ..Default::default() },
        7,
    );
    send(
        &mut stream,
        &mut reader,
        &format!("INGEST flash-io {}", encode_trace_inline(&checkpoint)),
    );
    send(&mut stream, &mut reader, &format!("INGEST random-posix {}", encode_trace_inline(&mix)));

    // Batched ingestion: one count header, then one `<label> <trace>`
    // line per entry, one reply for the whole batch.
    let extra: Vec<String> = (0..3)
        .map(|i| {
            let t = flash_io(&FlashIoParams { files: 2, blocks: 11 + i, ..Default::default() });
            format!("flash-io {}", encode_trace_inline(&t))
        })
        .collect();
    send(&mut stream, &mut reader, &format!("BATCH INGEST {}\n{}", extra.len(), extra.join("\n")));

    let probe = flash_io(&FlashIoParams { files: 2, blocks: 14, ..Default::default() });
    send(&mut stream, &mut reader, &format!("QUERY k=2 {}", encode_trace_inline(&probe)));

    // Multi-trace query: k and a count header, then one trace per line;
    // the reply carries one RESULT block per trace.
    let probe2 = random_posix(
        &RandomPosixParams { write_iterations: 9, read_iterations: 9, ..Default::default() },
        11,
    );
    send(
        &mut stream,
        &mut reader,
        &format!("MQUERY k=1 2\n{}\n{}", encode_trace_inline(&probe), encode_trace_inline(&probe2)),
    );
    send(&mut stream, &mut reader, "STATS");
    send(&mut stream, &mut reader, "SHUTDOWN");

    let index = daemon.join().expect("daemon joins");
    println!("# daemon stopped with {} entries in memory", index.len());
    Ok(())
}
