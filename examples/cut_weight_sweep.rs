//! How the cut weight steers the Kast Spectrum Kernel: "the cut weight
//! determined the granularity of the search" (§6).
//!
//! Sweeps the cut weight over a small dataset and prints how similarity
//! values and the number of surviving features change.
//!
//! Run with `cargo run --example cut_weight_sweep`.

use kastio::{
    pattern_string, ByteMode, Dataset, DatasetShape, KastKernel, KastOptions, StringKernel,
    TokenInterner,
};

fn main() {
    let dataset = Dataset::generate(DatasetShape::small(), 7);
    let mut interner = TokenInterner::new();
    let strings: Vec<_> = dataset
        .iter()
        .map(|e| interner.intern_string(&pattern_string(&e.trace, ByteMode::Preserve)))
        .collect();

    // Pick one example of category A and one of category C.
    let a_idx = dataset.iter().position(|e| e.name == "A00").expect("A00 exists");
    let c_idx = dataset.iter().position(|e| e.name == "C00").expect("C00 exists");
    let a2_idx = dataset.iter().position(|e| e.name == "A01").expect("A01 exists");

    println!("cut     k̄(A00,A01)  k̄(A00,C00)  features(A00,A01)");
    println!("---------------------------------------------------");
    for pow in 0..=9u32 {
        let cut = 2u64.pow(pow);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
        let same = kernel.normalized(&strings[a_idx], &strings[a2_idx]);
        let cross = kernel.normalized(&strings[a_idx], &strings[c_idx]);
        let nfeat = kernel.features(&strings[a_idx], &strings[a2_idx]).len();
        println!("{cut:<7} {same:<12.4} {cross:<12.4} {nfeat}");
    }
    println!();
    println!("reading: within-category similarity survives far higher cut weights");
    println!("than cross-category similarity — the cut weight is a granularity dial.");
}
