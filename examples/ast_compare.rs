//! The paper's future-work direction (§6): the string representation "is
//! independent from the domain", so the same machinery can compare
//! abstract syntax trees (their stated target: LLVM IR).
//!
//! This example flattens toy expression ASTs with the generic serialiser
//! and ranks their pairwise similarity with the Kast Spectrum Kernel.
//!
//! Run with `cargo run --example ast_compare`.

use kastio::pattern::ast::{weighted_string_of_tree, Expr};
use kastio::{KastKernel, KastOptions, StringKernel, TokenInterner};

fn main() {
    // Three versions of the same numeric kernel, plus one unrelated
    // function.
    let horner_v1 = Expr::add(
        Expr::mul(
            Expr::add(Expr::mul(Expr::var("a"), Expr::var("x")), Expr::var("b")),
            Expr::var("x"),
        ),
        Expr::var("c"),
    );
    let horner_v2 = Expr::add(
        Expr::mul(
            Expr::add(Expr::mul(Expr::var("a2"), Expr::var("x")), Expr::var("b2")),
            Expr::var("x"),
        ),
        Expr::var("c2"),
    );
    let naive_poly = Expr::add(
        Expr::add(
            Expr::mul(Expr::mul(Expr::var("d"), Expr::var("y")), Expr::var("y")),
            Expr::mul(Expr::var("e"), Expr::var("y")),
        ),
        Expr::var("f"),
    );
    let unrelated =
        Expr::call("hypot", vec![Expr::call("sqrt", vec![Expr::var("p")]), Expr::num(2)]);

    let mut interner = TokenInterner::new();
    let programs = [
        ("horner_v1", &horner_v1),
        ("horner_v2", &horner_v2),
        ("naive_poly", &naive_poly),
        ("unrelated", &unrelated),
    ];
    let strings: Vec<_> = programs
        .iter()
        .map(|(_, e)| interner.intern_string(&weighted_string_of_tree(*e)))
        .collect();

    for ((name, expr), ids) in programs.iter().zip(&strings) {
        println!("{name:<11}: {}  ({} tokens)", weighted_string_of_tree(*expr), ids.len());
    }
    println!();

    let kernel = KastKernel::new(KastOptions::with_cut_weight(1));
    println!("pairwise normalised Kast similarity:");
    print!("{:>11}", "");
    for (name, _) in &programs {
        print!(" {name:>10}");
    }
    println!();
    for (i, (name, _)) in programs.iter().enumerate() {
        print!("{name:>11}");
        for j in 0..programs.len() {
            print!(" {:>10.4}", kernel.normalized(&strings[i], &strings[j]));
        }
        println!();
    }

    let same_shape = kernel.normalized(&strings[0], &strings[1]);
    let related = kernel.normalized(&strings[0], &strings[2]);
    let far = kernel.normalized(&strings[0], &strings[3]);
    assert!(same_shape > related && related > far);
    println!("\nhorner_v1 is closest to horner_v2, then naive_poly, then unrelated —");
    println!("the ordering a clone detector over IR would want.");
}
