//! The paper's full evaluation in one example: generate the 110-example
//! dataset, build the Kast similarity matrix, repair it, and cluster —
//! then check that the three groups of Figure 7 come out.
//!
//! Run with `cargo run --release --example cluster_dataset`.

use std::collections::BTreeMap;

use kastio::{
    adjusted_rand_index, gram_matrix, hierarchical, pattern_string, psd_repair, ByteMode, Dataset,
    DistanceMatrix, GramMode, KastKernel, KastOptions, KernelPca, Linkage, SquareMatrix,
    TokenInterner,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §4.1: 22 base examples + 4 synthetic copies each = 110 examples.
    let dataset = Dataset::paper(20170904);
    println!("dataset: {} examples, per category {:?}", dataset.len(), dataset.counts());

    // Stage 1+2: every trace becomes a weighted string (byte info kept).
    let mut interner = TokenInterner::new();
    let strings: Vec<_> = dataset
        .iter()
        .map(|e| interner.intern_string(&pattern_string(&e.trace, ByteMode::Preserve)))
        .collect();
    println!("distinct token literals: {}", interner.len());

    // Kast Spectrum Kernel similarity matrix, cut weight 2.
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let gram = gram_matrix(&kernel, &strings, GramMode::Normalized, 0);

    // §4.1: negative eigenvalues are clamped and the matrix rebuilt.
    let square = SquareMatrix::from_row_major(gram.n(), gram.as_slice().to_vec());
    let repair = psd_repair(&square)?;
    println!("negative eigenvalues clamped: {}", repair.clamped);

    // Kernel PCA: the coordinates behind Figure 6.
    let pca = KernelPca::fit(&repair.matrix, 2)?;
    let mut centroid: BTreeMap<char, (f64, f64, usize)> = BTreeMap::new();
    for (i, e) in dataset.iter().enumerate() {
        let c = centroid.entry(e.category.tag()).or_insert((0.0, 0.0, 0));
        c.0 += pca.coords(i)[0];
        c.1 += pca.coords(i)[1];
        c.2 += 1;
    }
    println!("\nKernel PCA centroids (PC1, PC2):");
    for (tag, (x, y, n)) in &centroid {
        println!("  {tag}: ({:+.4}, {:+.4})", x / *n as f64, y / *n as f64);
    }

    // Single-linkage clustering: the dendrogram behind Figure 7.
    let distance = DistanceMatrix::from_gram(repair.matrix.n(), repair.matrix.as_slice());
    let dendro = hierarchical(&distance, Linkage::Single);
    let labels3 = dendro.cut(3);

    // Expected: {A}, {B}, {C∪D}.
    let expected: Vec<usize> =
        dataset.labels().iter().map(|&l| if l >= 2 { 2 } else { l }).collect();
    let ari = adjusted_rand_index(&labels3, &expected);
    println!("\n3-cluster ARI vs {{A}},{{B}},{{C∪D}}: {ari:.3}");
    assert!((ari - 1.0).abs() < 1e-12, "paper: no misplaced examples");
    println!("=> the paper's Figure 6/7 clustering reproduces exactly");
    Ok(())
}
