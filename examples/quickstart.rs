//! Quickstart: record two applications on the simulated POSIX layer,
//! convert their traces to weighted strings, and compare them with the
//! Kast Spectrum Kernel.
//!
//! Run with `cargo run --example quickstart`.

use kastio::{
    pattern_string, ByteMode, KastKernel, KastOptions, SimFs, StringKernel, TokenInterner,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Application 1: a checkpoint writer (FLASH-IO flavour).
    let mut fs = SimFs::new();
    for file in ["chk_0000", "plt_0000"] {
        let fd = fs.open(file)?;
        for header in [48u64, 655, 48, 16] {
            fs.write(fd, header)?;
        }
        for _ in 0..24 {
            fs.write(fd, 512 * 1024)?;
        }
        fs.close(fd)?;
    }
    let checkpointer = fs.into_trace();

    // Application 2: the same checkpoint writer, one more data block per
    // file (e.g. a slightly larger grid).
    let mut fs = SimFs::new();
    for file in ["chk_0000", "plt_0000"] {
        let fd = fs.open(file)?;
        for header in [48u64, 655, 48, 16] {
            fs.write(fd, header)?;
        }
        for _ in 0..25 {
            fs.write(fd, 512 * 1024)?;
        }
        fs.close(fd)?;
    }
    let checkpointer_variant = fs.into_trace();

    // Application 3: a random-access reader (lseek loops).
    let mut fs = SimFs::new();
    let fd = fs.open("db.bin")?;
    fs.write(fd, 1 << 22)?;
    for i in 0..64 {
        fs.lseek(fd, (i * 37 % 4000) * 1024, kastio::trace::SeekWhence::Set)?;
        fs.read(fd, 8192)?;
    }
    fs.close(fd)?;
    let reader = fs.into_trace();

    // Two-stage conversion (§3.1 of the paper): trace → tree → string.
    let mut interner = TokenInterner::new();
    let s1 = interner.intern_string(&pattern_string(&checkpointer, ByteMode::Preserve));
    let s2 = interner.intern_string(&pattern_string(&checkpointer_variant, ByteMode::Preserve));
    let s3 = interner.intern_string(&pattern_string(&reader, ByteMode::Preserve));

    println!("checkpointer          : {}", pattern_string(&checkpointer, ByteMode::Preserve));
    println!(
        "checkpointer variant  : {}",
        pattern_string(&checkpointer_variant, ByteMode::Preserve)
    );
    println!("random reader         : {}\n", pattern_string(&reader, ByteMode::Preserve));

    // Kast Spectrum Kernel (§3.2), cut weight 2.
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let same = kernel.normalized(&s1, &s2);
    let different = kernel.normalized(&s1, &s3);
    println!("similarity(checkpointer, variant)       = {same:.4}");
    println!("similarity(checkpointer, random reader) = {different:.4}");
    assert!(same > different, "the kernel orders patterns sensibly");
    Ok(())
}
