//! k-NN classification over an indexed corpus — the library API behind
//! `kastio serve`.
//!
//! Builds a labelled corpus from the paper-style workload generators,
//! ingests it once, then classifies unseen probe workloads and prints
//! what the prefilter and cache saved.
//!
//! ```sh
//! cargo run --example index_knn
//! ```

use kastio::workloads::generators::{flash_io, random_posix, FlashIoParams, RandomPosixParams};
use kastio::{IndexOptions, PatternIndex, PrefilterConfig};

fn main() {
    // `query`/`ingest` take `&self` (the index is internally sharded and
    // synchronised), so no `mut` binding is needed even single-threaded.
    let index = PatternIndex::new(IndexOptions {
        shards: 2,
        prefilter: PrefilterConfig { min_candidates: 4, per_k: 2, ..PrefilterConfig::default() },
        ..IndexOptions::default()
    });

    // Ingest once: 8 FLASH-style checkpoint writers, 8 random-POSIX mixes.
    for i in 0..8 {
        let trace = flash_io(&FlashIoParams {
            files: 2 + i % 4,
            blocks: 12 + 3 * i,
            ..FlashIoParams::default()
        });
        index.ingest(format!("flash-{i}"), "flash-io", trace).unwrap();
    }
    for i in 0..8 {
        let params = RandomPosixParams {
            write_iterations: 10 + 2 * i,
            read_iterations: 10 + 2 * i,
            ..RandomPosixParams::default()
        };
        index
            .ingest(format!("posix-{i}"), "random-posix", random_posix(&params, 97 + i as u64))
            .unwrap();
    }
    println!(
        "corpus: {} entries across {} shards {:?}, {} ingest evals",
        index.len(),
        index.shard_count(),
        index.shard_sizes(),
        index.stats().ingest_evals
    );

    // Classify two probes the index has never seen.
    let probes = [
        (
            "checkpoint-like",
            flash_io(&FlashIoParams { files: 3, blocks: 26, ..Default::default() }),
        ),
        (
            "seek-read-like",
            random_posix(
                &RandomPosixParams {
                    write_iterations: 17,
                    read_iterations: 17,
                    ..Default::default()
                },
                2024,
            ),
        ),
    ];
    for (what, trace) in &probes {
        let result = index.query(trace, 3);
        println!(
            "\nprobe {what}: label={} ({} candidates, {} kernel evals, {} cache hits)",
            result.label.as_deref().unwrap_or("-"),
            result.candidates,
            result.evaluated,
            result.cache_hits
        );
        for (rank, n) in result.neighbors.iter().enumerate() {
            println!("  #{} {:10} {:13} similarity {:.4}", rank + 1, n.name, n.label, n.similarity);
        }
    }

    // The same probe again is answered from the LRU cache.
    let again = index.query(&probes[0].1, 3);
    println!("\nrepeat probe: {} kernel evals, {} cache hits", again.evaluated, again.cache_hits);
    let stats = index.stats();
    println!(
        "totals: {} queries, {} kernel evals, {} cache hits, {} pruned by prefilter",
        stats.queries, stats.kernel_evals, stats.cache_hits, stats.prefilter_pruned
    );
}
