//! End-to-end tests of the `kastio` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kastio"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kastio-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

fn write(path: &PathBuf, content: &str) {
    std::fs::write(path, content).expect("test file writes");
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn convert_renders_the_weighted_string() {
    let dir = tmpdir("convert");
    let trace = dir.join("t.trace");
    write(&trace, "h0 open 0\nh0 write 8\nh0 write 8\nh0 close 0\n");
    let out = bin().arg("convert").arg(&trace).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim(), "[ROOT]x1 [HANDLE]x1 [BLOCK]x1 write[8]x2");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn convert_ignore_bytes_zeroes_values() {
    let dir = tmpdir("convert-nb");
    let trace = dir.join("t.trace");
    write(&trace, "h0 open 0\nh0 write 8\nh0 close 0\n");
    let out = bin()
        .args(["convert", trace.to_str().unwrap(), "--ignore-bytes"])
        .output()
        .expect("binary runs");
    assert!(String::from_utf8_lossy(&out.stdout).contains("write[0]"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compare_reports_similarity_and_explains() {
    let dir = tmpdir("compare");
    let a = dir.join("a.trace");
    let b = dir.join("b.trace");
    write(&a, "h0 open 0\nh0 write 8\nh0 write 8\nh0 close 0\n");
    write(&b, "h0 open 0\nh0 write 8\nh0 write 8\nh0 write 8\nh0 close 0\n");
    let out = bin()
        .args(["compare", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("normalised"));

    let out = bin()
        .args(["compare", a.to_str().unwrap(), b.to_str().unwrap(), "--explain"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("shared feature"));
    assert!(stdout.contains("write[8]"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn generate_then_cluster_roundtrip() {
    let dir = tmpdir("gen");
    let out = bin()
        .args(["generate", dir.to_str().unwrap(), "--seed", "7"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("MANIFEST").exists());
    assert!(dir.join("A00.trace").exists());

    let out = bin()
        .args(["cluster", dir.to_str().unwrap(), "--groups", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("purity vs categories"));
    // The paper grouping: 3 clusters, A and B pure, C∪D merged → purity
    // counts C∪D majority = 20/110 + … ⇒ exactly 90/110.
    assert!(stdout.contains("purity vs categories: 0.818"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = bin().args(["convert", "/definitely/not/there.trace"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn bad_flag_value_is_reported() {
    let out = bin().args(["cluster", "x", "--cut", "abc"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs an integer"));
}

#[test]
fn version_flag_prints_version() {
    for arg in ["--version", "-V", "version"] {
        let out = bin().arg(arg).output().expect("binary runs");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(stdout.trim(), format!("kastio {}", env!("CARGO_PKG_VERSION")));
    }
}

#[test]
fn help_subcommand_covers_all_commands() {
    let out = bin().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for command in ["convert", "compare", "generate", "cluster", "serve", "query", "help"] {
        assert!(stdout.contains(command), "usage mentions {command}:\n{stdout}");
    }
}

#[test]
fn help_topic_is_detailed() {
    let out = bin().args(["help", "serve"]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("INGEST"), "serve help documents the protocol:\n{stdout}");
    assert!(stdout.contains("SHUTDOWN"));

    let out = bin().args(["help", "frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
}

#[test]
fn unknown_flag_error_names_the_flag() {
    let out = bin().args(["convert", "x.trace", "--frobnicate"]).output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--frobnicate"), "error names the offending flag:\n{stderr}");
}

#[test]
fn query_with_unreachable_server_fails_cleanly() {
    let dir = tmpdir("query-unreachable");
    let trace = dir.join("q.trace");
    write(&trace, "h0 write 8\n");
    // Port 1 on loopback refuses immediately (nothing listens there).
    let out = bin()
        .args(["query", "127.0.0.1:1", trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot connect"));
    std::fs::remove_dir_all(&dir).unwrap();
}
