//! E8 — the §3.2 worked example, asserted through the public facade API.

use kastio::pattern::token::{TokenLiteral, WeightedToken};
use kastio::{
    CutRule, IdString, KastKernel, KastOptions, Normalization, StringKernel, TokenInterner,
    WeightedString,
};

fn sym(name: &str, w: u64) -> WeightedToken {
    WeightedToken::new(TokenLiteral::Sym(name.to_string()), w)
}

fn strings() -> (IdString, IdString) {
    let mut interner = TokenInterner::new();
    let a: WeightedString = vec![
        sym("x", 6),
        sym("y", 6),
        sym("z", 7),
        sym("fa1", 1),
        sym("u", 3),
        sym("v", 4),
        sym("fa2", 1),
        sym("u", 2),
        sym("v", 4),
        sym("fa3", 1),
        sym("w1", 2),
        sym("w2", 4),
        sym("fa4", 1),
        sym("w1", 4),
        sym("w2", 5),
        sym("fa5", 12),
        sym("fa6", 12),
    ]
    .into_iter()
    .collect();
    let b: WeightedString = vec![
        sym("x", 5),
        sym("y", 6),
        sym("z", 6),
        sym("gb1", 1),
        sym("x", 6),
        sym("y", 6),
        sym("z", 6),
        sym("gb2", 1),
        sym("u", 2),
        sym("v", 4),
        sym("gb3", 1),
        sym("u", 1),
        sym("v", 4),
        sym("gb4", 1),
        sym("w1", 3),
        sym("w2", 5),
        sym("gb5", 1),
        sym("w1", 2),
        sym("w2", 4),
    ]
    .into_iter()
    .collect();
    (interner.intern_string(&a), interner.intern_string(&b))
}

fn paper_kernel() -> KastKernel {
    KastKernel::new(KastOptions {
        cut_weight: 4,
        cut_rule: CutRule::AllOccurrences,
        normalization: Normalization::WeightProduct,
    })
}

#[test]
fn equations_1_and_2_string_weights() {
    let (a, b) = strings();
    assert_eq!(a.weight_at_least(4), 64, "Eq. (1)");
    assert_eq!(b.weight_at_least(4), 52, "Eq. (2)");
}

#[test]
fn equations_3_to_10_feature_vectors() {
    let (a, b) = strings();
    let mut feats = paper_kernel().features(&a, &b);
    // Paper order: S1 (longest), then S2, then S3 (S2 and S3 share length
    // 2; S2 is the lighter one in A).
    feats.sort_by_key(|f| (std::cmp::Reverse(f.len()), f.weight_a));
    assert_eq!(feats.len(), 3, "exactly S1, S2, S3");
    let fa: Vec<u64> = feats.iter().map(|f| f.weight_a).collect();
    let fb: Vec<u64> = feats.iter().map(|f| f.weight_b).collect();
    assert_eq!(fa, vec![19, 13, 15], "Eq. (6)");
    assert_eq!(fb, vec![35, 11, 14], "Eq. (10)");
}

#[test]
fn equation_11_kernel_value() {
    let (a, b) = strings();
    assert_eq!(paper_kernel().raw(&a, &b), 1018.0, "Eq. (11)");
}

#[test]
fn equations_12_and_13_normalisation() {
    let (a, b) = strings();
    let norm = paper_kernel().normalized(&a, &b);
    assert!((norm - 1018.0 / 3328.0).abs() < 1e-12, "Eq. (13)");
    assert!((norm - 0.3059).abs() < 1e-4, "the paper quotes 0.3059");
}

#[test]
fn s1_is_the_largest_shared_substring_with_two_appearances_in_b() {
    let (a, b) = strings();
    let feats = paper_kernel().features(&a, &b);
    let s1 = feats.iter().max_by_key(|f| f.len()).expect("features exist");
    assert_eq!(s1.len(), 3);
    assert_eq!(s1.starts_a.len(), 1, "S1 appears once in A");
    assert_eq!(s1.starts_b.len(), 2, "S1 appears twice in B");
}
