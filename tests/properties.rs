//! Cross-crate property tests: the pipeline and kernel invariants hold on
//! arbitrary traces, not just the curated workloads.

use proptest::prelude::*;

use kastio::pattern::tree::PatternTree;
use kastio::trace::{HandleId, OpKind, Operation, Trace};
use kastio::{
    build_tree, compress_tree, flatten_tree, parse_trace, pattern_string, write_trace, ByteMode,
    CompressOptions, IdString, KastKernel, KastOptions, StringKernel, TokenInterner,
};

fn arb_opkind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Read),
        Just(OpKind::Write),
        Just(OpKind::Lseek),
        Just(OpKind::Fsync),
        Just(OpKind::Fileno),
        Just(OpKind::Fscanf),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    // Up to 3 handles; each handle gets 1–3 blocks of 0–8 operations.
    proptest::collection::vec((0u32..3, arb_opkind(), prop_oneof![Just(0u64), 1u64..5000]), 0..60)
        .prop_map(|raw| {
            let mut trace = Trace::new();
            let mut open = [false; 3];
            for (h, kind, bytes) in raw {
                let handle = HandleId::new(h);
                if !open[h as usize] {
                    trace.push(Operation::control(handle, OpKind::Open));
                    open[h as usize] = true;
                }
                let bytes = if kind.carries_bytes() { bytes } else { 0 };
                trace.push(Operation::new(handle, kind, bytes));
            }
            for (h, is_open) in open.iter().enumerate() {
                if *is_open {
                    trace.push(Operation::control(HandleId::new(h as u32), OpKind::Close));
                }
            }
            trace
        })
}

fn substantive_ops(trace: &Trace) -> u64 {
    trace.iter().filter(|o| !o.kind.is_negligible() && !o.kind.is_block_delimiter()).count() as u64
}

fn intern_pair(ta: &Trace, tb: &Trace, mode: ByteMode) -> (IdString, IdString) {
    let mut interner = TokenInterner::new();
    let a = interner.intern_string(&pattern_string(ta, mode));
    let b = interner.intern_string(&pattern_string(tb, mode));
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_format_roundtrips(trace in arb_trace()) {
        let parsed = parse_trace(&write_trace(&trace)).expect("rendered traces parse");
        prop_assert_eq!(parsed, trace);
    }

    #[test]
    fn compression_preserves_mass(trace in arb_trace(), passes in 0usize..4) {
        let mut tree = build_tree(&trace, ByteMode::Preserve);
        let before = tree.mass();
        prop_assert_eq!(before, substantive_ops(&trace));
        compress_tree(&mut tree, &CompressOptions { passes, ..CompressOptions::default() });
        prop_assert_eq!(tree.mass(), before);
    }

    #[test]
    fn compression_never_grows_the_tree(trace in arb_trace()) {
        let mut tree = build_tree(&trace, ByteMode::Preserve);
        let before = tree.leaf_count();
        compress_tree(&mut tree, &CompressOptions::default());
        prop_assert!(tree.leaf_count() <= before);
    }

    #[test]
    fn flatten_covers_all_mass_plus_structure(trace in arb_trace()) {
        let mut tree = build_tree(&trace, ByteMode::Preserve);
        compress_tree(&mut tree, &CompressOptions::default());
        let s = flatten_tree(&tree);
        // Total string weight = mass + structural tokens + level-ups ≥ mass.
        prop_assert!(s.total_weight() >= tree.mass());
        // weight_at_least is monotonically decreasing in the threshold.
        let w1 = s.weight_at_least(1);
        let w2 = s.weight_at_least(2);
        let w4 = s.weight_at_least(4);
        prop_assert!(w1 >= w2 && w2 >= w4);
        prop_assert_eq!(w1, s.total_weight());
    }

    #[test]
    fn byte_mode_ignore_is_a_projection(trace in arb_trace()) {
        // Ignoring bytes then re-ignoring must equal ignoring once; and
        // both byte modes agree on total mass.
        let once = build_tree(&trace, ByteMode::Ignore);
        prop_assert_eq!(once.mass(), build_tree(&trace, ByteMode::Preserve).mass());
        for h in &once.handles {
            for b in &h.blocks {
                for op in &b.ops {
                    prop_assert!(op.literal.bytes().is_zero());
                }
            }
        }
    }

    #[test]
    fn kast_kernel_is_symmetric_and_nonnegative(
        ta in arb_trace(),
        tb in arb_trace(),
        cut in 1u64..16,
    ) {
        let (a, b) = intern_pair(&ta, &tb, ByteMode::Preserve);
        let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
        let ab = kernel.raw(&a, &b);
        let ba = kernel.raw(&b, &a);
        prop_assert_eq!(ab, ba, "raw kernel is symmetric");
        // NOTE: normalised values are NOT bounded by 1 — the feature space
        // is pair-dependent and appearances may overlap, so Cauchy–Schwarz
        // does not apply. That is exactly why §4.1 clamps negative
        // eigenvalues. We check symmetry, non-negativity and finiteness.
        let n = kernel.normalized(&a, &b);
        prop_assert!(n.is_finite());
        prop_assert!(n >= 0.0);
        prop_assert_eq!(n, kernel.normalized(&b, &a));
        if !a.is_empty() {
            let self_n = kernel.normalized(&a, &a);
            prop_assert!(self_n == 0.0 || (self_n - 1.0).abs() < 1e-9,
                "self-similarity is 1 under cosine normalisation (or 0 when empty)");
        }
    }

    #[test]
    fn raising_the_cut_never_adds_features(
        ta in arb_trace(),
        tb in arb_trace(),
    ) {
        let (a, b) = intern_pair(&ta, &tb, ByteMode::Preserve);
        let mut last = usize::MAX;
        for cut in [1u64, 2, 4, 8, 16, 32] {
            let kernel = KastKernel::new(KastOptions::with_cut_weight(cut));
            let n = kernel.features(&a, &b).len();
            prop_assert!(n <= last, "feature count must shrink as the cut grows");
            last = n;
        }
    }

    #[test]
    fn empty_tree_flattens_to_root(passes in 0usize..3) {
        let mut tree = PatternTree::new();
        compress_tree(&mut tree, &CompressOptions { passes, ..CompressOptions::default() });
        prop_assert_eq!(flatten_tree(&tree).to_string(), "[ROOT]x1");
    }
}
