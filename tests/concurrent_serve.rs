//! Concurrent serving: one writer client keeps ingesting while several
//! reader clients query a `--shards 4` daemon. Every reply must stay
//! well-formed, every similarity bit-identical to a direct
//! `KastKernel::normalized` evaluation of the same (query, entry) pair,
//! and the per-shard entry counts reported by STATS must sum to the
//! corpus size.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use kastio::index::protocol::{encode_trace_inline, read_reply};
use kastio::workloads::generators::{flash_io, random_posix, FlashIoParams, RandomPosixParams};
use kastio::{
    pattern_string, ByteMode, IdString, KastKernel, KastOptions, StringKernel, TokenInterner, Trace,
};

/// Kills the serve daemon if a test panics before SHUTDOWN. Keeps the
/// stdout pipe open so the daemon's own prints never hit EPIPE.
struct ServerGuard {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The runtime under test: `KASTIO_TEST_RUNTIME=epoll` re-runs this whole
/// suite against the epoll reactor — concurrency behaviour and reply
/// bytes must match the threads runtime exactly.
fn runtime_args() -> Vec<String> {
    match std::env::var("KASTIO_TEST_RUNTIME") {
        Ok(name) => vec!["--runtime".to_string(), name],
        Err(_) => Vec::new(),
    }
}

fn start_server(extra_args: &[&str]) -> ServerGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["serve", "--port", "0"])
        .args(runtime_args())
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("serve announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_string();
    ServerGuard { child, addr, _stdout: stdout }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> Connection {
        let stream = TcpStream::connect(addr).expect("client connects");
        Connection { reader: BufReader::new(stream.try_clone().expect("clone")), writer: stream }
    }

    /// Sends a request (newline-terminated by the caller) and collects
    /// the single framed reply.
    fn roundtrip(&mut self, request: &str) -> Vec<String> {
        self.writer.write_all(request.as_bytes()).expect("request sent");
        self.writer.flush().expect("request flushed");
        let reply = read_reply(&mut self.reader).expect("reply read");
        reply.lines().map(str::to_string).collect()
    }
}

fn stat_value(stats: &[String], key: &str) -> u64 {
    stats
        .iter()
        .find_map(|line| line.strip_prefix(&format!("STAT {key} ")))
        .unwrap_or_else(|| panic!("stats reply has {key}: {stats:?}"))
        .parse()
        .expect("stat value is integral")
}

/// The 12 preloaded entries (`e0`…`e11`): two workload families so the
/// prefilter and the majority vote both have structure to find.
fn initial_corpus() -> Vec<(String, Trace)> {
    let mut entries = Vec::new();
    for i in 0..6 {
        let trace = flash_io(&FlashIoParams {
            files: 2 + i % 3,
            blocks: 10 + 4 * i,
            ..FlashIoParams::default()
        });
        entries.push(("flash".to_string(), trace));
    }
    for i in 0..6 {
        let trace = random_posix(
            &RandomPosixParams {
                write_iterations: 8 + 4 * i,
                read_iterations: 8 + 4 * i,
                ..RandomPosixParams::default()
            },
            41 + i as u64,
        );
        entries.push(("posix".to_string(), trace));
    }
    entries
}

/// The 8 entries the writer ingests during the concurrent phase
/// (`e12`…`e19`, in order — the writer is the only ingesting client).
fn writer_corpus() -> Vec<(String, Trace)> {
    (0..8)
        .map(|i| {
            let trace = flash_io(&FlashIoParams {
                files: 4,
                blocks: 40 + 2 * i,
                ..FlashIoParams::default()
            });
            ("flash".to_string(), trace)
        })
        .collect()
}

#[test]
fn sharded_daemon_serves_concurrent_readers_under_writer_load() {
    let server = start_server(&["--shards", "4"]);

    // Preload via BATCH INGEST: one header, 12 item lines, one reply.
    let initial = initial_corpus();
    let mut conn = Connection::open(&server.addr);
    let items: Vec<String> = initial
        .iter()
        .map(|(label, trace)| format!("{label} {}", encode_trace_inline(trace)))
        .collect();
    let reply = conn.roundtrip(&format!("BATCH INGEST {}\n{}\n", items.len(), items.join("\n")));
    assert_eq!(reply, vec!["OK batch=12 entries=12".to_string()]);

    // Ground truth: every trace the server will ever hold, in id order
    // (e0…e11 preloaded, e12…e19 from the writer), evaluated directly
    // with one shared interner — the exactness oracle for every MATCH
    // line any reader sees, including matches against writer entries.
    let writer_entries = writer_corpus();
    let all_traces: Vec<&Trace> =
        initial.iter().map(|(_, t)| t).chain(writer_entries.iter().map(|(_, t)| t)).collect();
    let mut interner = TokenInterner::new();
    let strings: Vec<IdString> = all_traces
        .iter()
        .map(|t| interner.intern_string(&pattern_string(t, ByteMode::Preserve)))
        .collect();
    let probes: Vec<Trace> = vec![initial[1].1.clone(), initial[7].1.clone()];
    let probe_strings: Vec<IdString> = probes
        .iter()
        .map(|t| interner.intern_string(&pattern_string(t, ByteMode::Preserve)))
        .collect();
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));

    // Concurrent phase: one writer ingesting e12…e19, three readers each
    // querying both probes several times.
    let addr = server.addr.clone();
    let reader_replies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let writer_addr = addr.clone();
        let writer_items = &writer_entries;
        let writer = scope.spawn(move || {
            let mut conn = Connection::open(&writer_addr);
            for (i, (label, trace)) in writer_items.iter().enumerate() {
                let reply =
                    conn.roundtrip(&format!("INGEST {label} {}\n", encode_trace_inline(trace)));
                assert_eq!(reply.len(), 1, "ingest reply is a single line: {reply:?}");
                assert!(
                    reply[0].starts_with(&format!("OK id={} name=e{}", 12 + i, 12 + i)),
                    "writer is the only ingester, so ids are sequential: {reply:?}"
                );
            }
        });
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                let probes = &probes;
                scope.spawn(move || {
                    let mut conn = Connection::open(&addr);
                    let mut replies = Vec::new();
                    for _ in 0..4 {
                        for probe in probes {
                            let reply = conn
                                .roundtrip(&format!("QUERY k=3 {}\n", encode_trace_inline(probe)));
                            replies.push(reply);
                        }
                    }
                    replies
                })
            })
            .collect();
        writer.join().expect("writer succeeds");
        readers.into_iter().flat_map(|r| r.join().expect("reader succeeds")).collect()
    });

    // Every reader reply is well-formed and bit-identical to the oracle.
    assert_eq!(reader_replies.len(), 3 * 4 * 2);
    for (i, reply) in reader_replies.iter().enumerate() {
        let probe = &probe_strings[i % 2];
        assert!(reply[0].starts_with("OK matches=3 label="), "reply head: {reply:?}");
        assert_eq!(*reply.last().unwrap(), "END", "reply tail: {reply:?}");
        assert_eq!(reply.len(), 5, "OK + 3 MATCH + END: {reply:?}");
        for (rank, line) in reply[1..4].iter().enumerate() {
            let fields: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(fields.len(), 5, "MATCH line shape: {line}");
            assert_eq!(fields[0], "MATCH");
            assert_eq!(fields[1], (rank + 1).to_string());
            let entry: usize = fields[2].strip_prefix('e').expect("server names").parse().unwrap();
            assert!(entry < strings.len(), "matched entry e{entry} is a known ingest");
            let similarity: f64 = fields[4].parse().expect("similarity parses");
            let direct = kernel.normalized(probe, &strings[entry]);
            assert_eq!(
                similarity.to_bits(),
                direct.to_bits(),
                "e{entry}: similarity under concurrency must stay bit-identical \
                 ({similarity} vs {direct})"
            );
        }
    }

    // MQUERY over the settled corpus: one framed reply, one RESULT block
    // per probe, every MATCH still exact.
    let reply = conn.roundtrip(&format!(
        "MQUERY k=2 2\n{}\n{}\n",
        encode_trace_inline(&probes[0]),
        encode_trace_inline(&probes[1])
    ));
    assert_eq!(reply[0], "OK queries=2", "{reply:?}");
    assert_eq!(*reply.last().unwrap(), "END");
    let result_lines: Vec<usize> = reply
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("RESULT "))
        .map(|(at, _)| at)
        .collect();
    assert_eq!(result_lines.len(), 2, "{reply:?}");
    for (which, &at) in result_lines.iter().enumerate() {
        assert!(reply[at].starts_with(&format!("RESULT {} matches=2", which + 1)), "{reply:?}");
        for line in &reply[at + 1..at + 3] {
            let fields: Vec<&str> = line.split_whitespace().collect();
            let entry: usize = fields[2].strip_prefix('e').unwrap().parse().unwrap();
            let similarity: f64 = fields[4].parse().unwrap();
            let direct = kernel.normalized(&probe_strings[which], &strings[entry]);
            assert_eq!(similarity.to_bits(), direct.to_bits());
        }
    }

    // STATS: 4 shards whose entry counts sum to the corpus size.
    let stats = conn.roundtrip("STATS\n");
    assert_eq!(stat_value(&stats, "entries"), 20);
    assert_eq!(stat_value(&stats, "shards"), 4);
    let shard_sum: u64 = (0..4).map(|i| stat_value(&stats, &format!("shard{i}_entries"))).sum();
    assert_eq!(shard_sum, 20, "shard counts sum to the corpus size: {stats:?}");
    // The id % 4 placement puts exactly 5 of the 20 ids in each shard.
    for i in 0..4 {
        assert_eq!(stat_value(&stats, &format!("shard{i}_entries")), 5, "{stats:?}");
    }
    assert_eq!(
        stat_value(&stats, "queries"),
        3 * 4 * 2 + 2,
        "24 reader queries plus the 2-trace MQUERY"
    );

    assert_eq!(conn.roundtrip("SHUTDOWN\n"), vec!["OK bye".to_string()]);
}

/// The shared kernel cache warms once per (query, entry) pair across the
/// whole corpus, not once per shard: a repeated hot query is answered
/// entirely from cache even though its candidates span all 4 shards —
/// and the similarities stay bit-identical between the cold and warm
/// passes (the cache changes where values come from, never what they
/// are).
#[test]
fn shared_cache_warms_a_cross_shard_query_once() {
    let server = start_server(&["--shards", "4"]);
    let mut conn = Connection::open(&server.addr);

    let initial = initial_corpus();
    let items: Vec<String> = initial
        .iter()
        .map(|(label, trace)| format!("{label} {}", encode_trace_inline(trace)))
        .collect();
    let reply = conn.roundtrip(&format!("BATCH INGEST {}\n{}\n", items.len(), items.join("\n")));
    assert_eq!(reply, vec!["OK batch=12 entries=12".to_string()]);

    let probe = encode_trace_inline(&initial[3].1);
    let cold = conn.roundtrip(&format!("QUERY k=3 {probe}\n"));
    let after_cold = conn.roundtrip("STATS\n");
    let cold_evals = stat_value(&after_cold, "kernel_evals");
    let cold_hits = stat_value(&after_cold, "cache_hits");
    assert!(cold_evals > 0, "a cold query pays for kernel evaluations: {after_cold:?}");

    // The candidates genuinely span every shard (id % 4 placement of a
    // 12-entry corpus puts 3 entries in each), so a per-shard cache
    // would need up to 4 warm-ups. The shared cache needs exactly one.
    let warm = conn.roundtrip(&format!("QUERY k=3 {probe}\n"));
    let after_warm = conn.roundtrip("STATS\n");
    assert_eq!(
        stat_value(&after_warm, "kernel_evals"),
        cold_evals,
        "the warm pass re-evaluated nothing: {after_warm:?}"
    );
    assert_eq!(
        stat_value(&after_warm, "cache_hits") - cold_hits,
        cold_evals,
        "every pair the cold pass evaluated was served from the shared cache: {after_warm:?}"
    );
    assert_eq!(cold, warm, "cache hits change nothing about the reply bytes");

    assert_eq!(conn.roundtrip("SHUTDOWN\n"), vec!["OK bye".to_string()]);
}
