//! Framing under adversarial read/write boundaries: replies parsed
//! through a one-byte reader, and requests delivered to a live server
//! byte by byte (headers and batch items split across TCP segments).
//! The line protocol must frame on `\n` alone — any hidden reliance on
//! "one request arrives in one read" breaks here.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use kastio::index::protocol::read_reply;

/// A reader that returns at most one byte per `read` call, forcing every
/// line-assembly path to cope with maximal fragmentation.
struct OneByte<R: Read>(R);

impl<R: Read> Read for OneByte<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.0.read(&mut buf[..1])
    }
}

#[test]
fn read_reply_frames_correctly_at_one_byte_per_read() {
    let wire = "OK id=0 name=e0 entries=1\n\
                OK matches=2 label=flash\nMATCH 1 e0 flash 1\nMATCH 2 e1 flash 0.5\nEND\n\
                STAT entries 2\nSTAT shards 1\nEND\n\
                OK queries=1\nRESULT 1 matches=0 label=-\nEND\n\
                ERR unknown verb `FROB`\n";
    // Capacity 1 defeats BufReader's internal buffering too: every
    // read_line call sees single bytes from both layers.
    let mut reader = BufReader::with_capacity(1, OneByte(wire.as_bytes()));
    assert_eq!(read_reply(&mut reader).unwrap(), "OK id=0 name=e0 entries=1\n");
    assert_eq!(
        read_reply(&mut reader).unwrap(),
        "OK matches=2 label=flash\nMATCH 1 e0 flash 1\nMATCH 2 e1 flash 0.5\nEND\n"
    );
    assert_eq!(read_reply(&mut reader).unwrap(), "STAT entries 2\nSTAT shards 1\nEND\n");
    assert_eq!(read_reply(&mut reader).unwrap(), "OK queries=1\nRESULT 1 matches=0 label=-\nEND\n");
    assert_eq!(read_reply(&mut reader).unwrap(), "ERR unknown verb `FROB`\n");
    let eof = read_reply(&mut reader).unwrap_err();
    assert_eq!(eof.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn read_reply_detects_mid_reply_eof_at_any_boundary() {
    // Truncate a multi-line reply at every byte: each prefix must yield
    // either the error (mid-reply cut) — never a partial "success".
    let wire = "OK matches=1 label=x\nMATCH 1 e0 x 1\nEND\n";
    for cut in 0..wire.len() {
        let mut reader = BufReader::with_capacity(1, OneByte(&wire.as_bytes()[..cut]));
        let result = read_reply(&mut reader);
        assert!(
            result.is_err(),
            "cut at byte {cut}: a truncated reply must not parse, got {result:?}"
        );
    }
    let mut reader = BufReader::with_capacity(1, OneByte(wire.as_bytes()));
    assert_eq!(read_reply(&mut reader).unwrap(), wire, "the full reply still parses");
}

struct ServerGuard {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The runtime under test: `KASTIO_TEST_RUNTIME=epoll` re-runs this whole
/// suite against the epoll reactor, whose `LineFramer` must reassemble
/// the same byte-per-segment streams the blocking reader handles.
fn runtime_args() -> Vec<String> {
    match std::env::var("KASTIO_TEST_RUNTIME") {
        Ok(name) => vec!["--runtime".to_string(), name],
        Err(_) => Vec::new(),
    }
}

fn start_server() -> ServerGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["serve", "--port", "0"])
        .args(runtime_args())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("serve announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_string();
    ServerGuard { child, addr, _stdout: stdout }
}

/// Writes the request one byte per syscall, with TCP_NODELAY so each
/// byte really goes out as its own segment instead of coalescing in the
/// kernel's Nagle buffer.
fn send_byte_at_a_time(writer: &mut TcpStream, wire: &str) {
    for byte in wire.as_bytes() {
        writer.write_all(std::slice::from_ref(byte)).expect("byte sent");
        writer.flush().expect("byte flushed");
    }
}

#[test]
fn server_reassembles_requests_split_to_single_bytes() {
    let server = start_server();
    let stream = TcpStream::connect(&server.addr).expect("client connects");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // HELLO, one byte at a time.
    send_byte_at_a_time(&mut writer, "HELLO 1 split-test\n");
    let hello = read_reply(&mut reader).expect("hello reply");
    assert!(hello.starts_with("OK kastio proto=1 "), "{hello}");

    // INGEST with an inline trace, split to single bytes.
    send_byte_at_a_time(&mut writer, "INGEST flash h0 open 0;h0 write 64;h0 close 0\n");
    assert_eq!(read_reply(&mut reader).unwrap(), "OK id=0 name=e0 entries=1\n");

    // A batched request whose header AND item lines all arrive
    // fragmented: the server must frame on newlines, not on reads.
    send_byte_at_a_time(
        &mut writer,
        "BATCH INGEST 2\nflash h0 write 64;h0 write 64\nposix h0 read 8;h0 read 8\n",
    );
    assert_eq!(read_reply(&mut reader).unwrap(), "OK batch=2 entries=3\n");

    send_byte_at_a_time(&mut writer, "MQUERY k=1 2\nh0 write 64;h0 write 64\nh0 read 8\n");
    let mquery = read_reply(&mut reader).unwrap();
    assert!(mquery.starts_with("OK queries=2\n"), "{mquery}");
    assert!(mquery.ends_with("END\n"), "{mquery}");

    send_byte_at_a_time(&mut writer, "SHUTDOWN\n");
    assert_eq!(read_reply(&mut reader).unwrap(), "OK bye\n");
}

#[test]
fn server_handles_pipelined_requests_in_one_segment() {
    // The inverse failure mode of fragmentation: several requests
    // coalesced into a single write must still get one reply each, in
    // order.
    let server = start_server();
    let stream = TcpStream::connect(&server.addr).expect("client connects");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    writer
        .write_all(
            "HELLO 1 pipelined\nINGEST flash h0 write 64;h0 write 64\nSTATS\nSHUTDOWN\n".as_bytes(),
        )
        .expect("pipelined write");
    writer.flush().expect("flush");

    assert!(read_reply(&mut reader).unwrap().starts_with("OK kastio proto=1 "));
    assert_eq!(read_reply(&mut reader).unwrap(), "OK id=0 name=e0 entries=1\n");
    let stats = read_reply(&mut reader).unwrap();
    assert!(stats.starts_with("STAT entries 1\n"), "{stats}");
    assert_eq!(read_reply(&mut reader).unwrap(), "OK bye\n");
}
