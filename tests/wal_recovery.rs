//! The durability contract, proven against the real `kastio serve`
//! binary: **no acked `INGEST` is ever lost**. With `--wal` every
//! acknowledged ingest is fsync'd before its `OK` reply, so these tests
//! kill the daemon — `kill -9` mid-stream, or `abort()` at injected
//! crash points (`KASTIO_CRASH_POINT`, see `kastio_index::fault`) — and
//! assert that reload (= last good snapshot + WAL replay) recovers every
//! acked entry bit-for-bit, that a torn WAL tail truncates cleanly, and
//! that replay is idempotent across double reloads.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use kastio::index::protocol::{decode_trace_inline, read_reply};
use kastio::trace::wal::{scan_wal, wal_dir};
use kastio::{load_index, write_trace, IndexOptions, PatternIndex};

/// Kills the serve daemon if a test panics before its planned death.
struct ServerGuard {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `kastio serve --port 0 <extra_args>` with the given extra
/// environment (the crash-point injection variables) and waits for its
/// `listening on` announcement.
fn start_server(extra_args: &[&str], envs: &[(&str, &str)]) -> ServerGuard {
    let mut command = Command::new(env!("CARGO_BIN_EXE_kastio"));
    command
        .args(["serve", "--port", "0"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (key, value) in envs {
        command.env(key, value);
    }
    let mut child = command.spawn().expect("serve starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("serve announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_string();
    ServerGuard { child, addr, _stdout: stdout }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> Connection {
        let stream = TcpStream::connect(addr).expect("client connects");
        Connection { reader: BufReader::new(stream.try_clone().expect("clone")), writer: stream }
    }

    /// Sends a request and collects the framed reply; `None` once the
    /// server has gone away mid-exchange.
    fn try_roundtrip(&mut self, request: &str) -> Option<Vec<String>> {
        self.writer.write_all(request.as_bytes()).ok()?;
        self.writer.flush().ok()?;
        let reply = read_reply(&mut self.reader).ok()?;
        Some(reply.lines().map(str::to_string).collect())
    }

    fn roundtrip(&mut self, request: &str) -> Vec<String> {
        self.try_roundtrip(request).expect("server replied")
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kastio-walrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

/// A distinct inline trace per id, so recovered entries are provably the
/// ones that were acked (not merely the right count).
fn wire_trace(i: usize) -> String {
    format!("h0 write {};h0 read {};h0 write {}", 64 << (i % 8), 32 + i, 7 + i * 3)
}

/// Asserts entry `e<i>` of the reloaded index is bit-for-bit the ingest
/// that was acked: same name, same label, same serialized trace text.
fn assert_recovered(index: &PatternIndex, i: usize, label: &str) {
    let entries = index.entries();
    let entry = entries
        .iter()
        .find(|e| e.name == format!("e{i}"))
        .unwrap_or_else(|| panic!("acked e{i} missing after reload"));
    assert_eq!(entry.label, label, "e{i} label survives");
    let expected = decode_trace_inline(&wire_trace(i)).expect("test trace decodes");
    assert_eq!(
        write_trace(&entry.trace),
        write_trace(&expected),
        "e{i} trace bytes survive exactly"
    );
}

/// Total WAL bytes on disk under the durable root.
fn wal_bytes_on_disk(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(wal_dir(dir)) else { return 0 };
    entries.filter_map(Result::ok).filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum()
}

#[cfg(unix)]
fn send_signal(child: &Child, signal: &str) {
    let status =
        Command::new("kill").args([signal, &child.id().to_string()]).status().expect("kill runs");
    assert!(status.success(), "kill {signal} delivered");
}

/// `kill -9` a live server mid-ingest-stream: every entry whose `OK` the
/// client read must survive reload — there is no snapshot at all here
/// (no `--snapshot-every`, no SAVE), so recovery is pure WAL replay over
/// the empty establishing snapshot.
#[cfg(unix)]
#[test]
fn sigkill_mid_ingest_stream_loses_no_acked_entry() {
    let dir = tmpdir("sigkill");
    let save = dir.join("corpus");
    let mut server =
        start_server(&["--save", save.to_str().unwrap(), "--wal", "--wal-sync-micros", "500"], &[]);

    let addr = server.addr.clone();
    let (min_acked_tx, min_acked_rx) = std::sync::mpsc::channel::<()>();
    let writer = std::thread::spawn(move || {
        let mut conn = Connection::open(&addr);
        let mut acked = 0usize;
        loop {
            let request = format!("INGEST flash {}\n", wire_trace(acked));
            match conn.try_roundtrip(&request) {
                Some(reply) if reply[0].starts_with("OK id=") => {
                    assert_eq!(
                        reply[0],
                        format!("OK id={acked} name=e{acked} entries={}", acked + 1)
                    );
                    acked += 1;
                    if acked == 16 {
                        min_acked_tx.send(()).expect("signal main thread");
                    }
                }
                _ => return acked, // daemon died under us: stop counting
            }
        }
    });
    min_acked_rx.recv_timeout(Duration::from_secs(120)).expect("16 ingests acknowledged");
    // SIGKILL: no handler, no final save, no flush — only the
    // ack-after-fsync ordering stands between the daemon and data loss.
    send_signal(&server.child, "-KILL");
    let acked = writer.join().expect("writer joins");
    let _ = server.child.wait();
    assert!(acked >= 16);

    let restored = load_index(&save, IndexOptions::default()).expect("durable root loads");
    assert!(
        restored.len() >= acked,
        "reload holds every acked ingest ({} < {acked})",
        restored.len()
    );
    for i in 0..acked {
        assert_recovered(&restored, i, "flash");
    }
    assert_eq!(
        restored.snapshot_status().last_replay_records,
        restored.len() as u64,
        "with no snapshot since the (empty) establishing one, every entry came from WAL replay"
    );

    // Reload is idempotent: a second recovery sees the same corpus.
    let again = load_index(&save, IndexOptions::default()).expect("second reload");
    assert_eq!(again.len(), restored.len());

    // And a restarted daemon picks the corpus up and keeps serving.
    let mut reborn = start_server(
        &["--corpus", save.to_str().unwrap(), "--save", save.to_str().unwrap(), "--wal"],
        &[],
    );
    let mut conn = Connection::open(&reborn.addr);
    let next = restored.len();
    let reply = conn.roundtrip(&format!("INGEST flash {}\n", wire_trace(next)));
    assert_eq!(reply[0], format!("OK id={next} name=e{next} entries={}", next + 1));
    conn.roundtrip("SHUTDOWN\n");
    reborn.child.wait().expect("restarted daemon exits");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash point `after-ack-before-fsync`: the server aborts the instant
/// an ingest `OK` has left the socket. Under `--wal` the name is a
/// misnomer the test exists to prove: the fsync happened *before* the
/// ack, so the acked entry must already be durable.
#[test]
fn abort_right_after_the_ack_finds_the_record_already_durable() {
    let dir = tmpdir("after-ack");
    let save = dir.join("corpus");
    let mut server = start_server(
        &["--save", save.to_str().unwrap(), "--wal", "--wal-sync-micros", "500"],
        &[("KASTIO_CRASH_POINT", "after-ack-before-fsync")],
    );
    let mut conn = Connection::open(&server.addr);
    let reply = conn.roundtrip(&format!("INGEST burst {}\n", wire_trace(0)));
    assert_eq!(reply[0], "OK id=0 name=e0 entries=1");

    let status = server.child.wait().expect("daemon aborts at the crash point");
    assert!(!status.success(), "the injected abort() is not a clean exit");

    let restored = load_index(&save, IndexOptions::default()).expect("durable root loads");
    assert_eq!(restored.len(), 1, "the acked ingest survived the post-ack abort");
    assert_recovered(&restored, 0, "burst");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash point `mid-record`: the appender aborts with *half a record
/// physically fsync'd* to the shard log. The acked prefix must reload
/// exactly; the torn tail must be truncated, not parsed and not fatal.
#[test]
fn abort_mid_record_leaves_a_torn_tail_that_recovery_truncates() {
    let dir = tmpdir("mid-record");
    let save = dir.join("corpus");
    // Skip the first 3 hits: ingests 1-3 complete (and are acked), the
    // 4th append aborts halfway through its own record.
    let mut server = start_server(
        &["--save", save.to_str().unwrap(), "--wal", "--wal-sync-micros", "500"],
        &[("KASTIO_CRASH_POINT", "mid-record"), ("KASTIO_CRASH_SKIP", "3")],
    );
    let mut conn = Connection::open(&server.addr);
    for i in 0..3 {
        let reply = conn.roundtrip(&format!("INGEST flash {}\n", wire_trace(i)));
        assert_eq!(reply[0], format!("OK id={i} name=e{i} entries={}", i + 1));
    }
    let fourth = conn.try_roundtrip(&format!("INGEST flash {}\n", wire_trace(3)));
    assert!(fourth.is_none(), "the 4th ingest dies mid-append, unacked: {fourth:?}");
    let status = server.child.wait().expect("daemon aborts at the crash point");
    assert!(!status.success());

    let torn_bytes = wal_bytes_on_disk(&save);
    let restored = load_index(&save, IndexOptions::default()).expect("torn tail is not fatal");
    assert_eq!(restored.len(), 3, "exactly the acked prefix reloads");
    for i in 0..3 {
        assert_recovered(&restored, i, "flash");
    }
    assert!(restored.entries().iter().all(|e| e.name != "e3"), "no partial record is ever applied");

    // Recovery truncated the torn tail in place: the logs shrank, and
    // what remains scans clean shard by shard.
    let clean_bytes = wal_bytes_on_disk(&save);
    assert!(clean_bytes < torn_bytes, "torn tail truncated ({clean_bytes} !< {torn_bytes})");
    for entry in std::fs::read_dir(wal_dir(&save)).expect("wal dir") {
        let scan = scan_wal(&std::fs::read(entry.unwrap().path()).unwrap());
        assert!(!scan.truncated, "post-recovery logs have no torn tail");
    }
    assert_eq!(load_index(&save, IndexOptions::default()).unwrap().len(), 3, "reload idempotent");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash point `after-snapshot-rename-before-truncate`: the daemon dies
/// after the snapshot became the truth but before the WAL was compacted
/// — the one window where snapshot and log both hold the same entries.
/// Replay must be idempotent: apply nothing, lose nothing, double count
/// nothing.
#[test]
fn abort_between_snapshot_rename_and_wal_truncate_replays_idempotently() {
    let dir = tmpdir("post-rename");
    let save = dir.join("corpus");
    // Skip hit 0: the establishing snapshot at startup crosses the same
    // crash point. Hit 1 is the SAVE this test provokes.
    let mut server = start_server(
        &["--save", save.to_str().unwrap(), "--wal", "--wal-sync-micros", "500"],
        &[
            ("KASTIO_CRASH_POINT", "after-snapshot-rename-before-truncate"),
            ("KASTIO_CRASH_SKIP", "1"),
        ],
    );
    let mut conn = Connection::open(&server.addr);
    for i in 0..5 {
        let reply = conn.roundtrip(&format!("INGEST flash {}\n", wire_trace(i)));
        assert_eq!(reply[0], format!("OK id={i} name=e{i} entries={}", i + 1));
    }
    let save_reply = conn.try_roundtrip("SAVE\n");
    assert!(save_reply.is_none(), "SAVE dies after the rename, unacked: {save_reply:?}");
    let status = server.child.wait().expect("daemon aborts at the crash point");
    assert!(!status.success());

    // Both the snapshot and the uncompacted WAL now hold e0..e4.
    assert!(wal_bytes_on_disk(&save) > 0, "the WAL was not compacted before the abort");
    let restored = load_index(&save, IndexOptions::default()).expect("durable root loads");
    assert_eq!(restored.len(), 5, "snapshot + overlapping WAL never double-applies");
    for i in 0..5 {
        assert_recovered(&restored, i, "flash");
    }
    assert_eq!(
        restored.snapshot_status().last_replay_records,
        0,
        "every WAL record was already in the snapshot: replay applies none"
    );
    assert_eq!(load_index(&save, IndexOptions::default()).unwrap().len(), 5, "reload idempotent");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The establish sequence: starting a `--wal` daemon folds a `--corpus`
/// preload into a fresh snapshot and empties the logs before serving, so
/// stale records from a previous incarnation can never alias the ids the
/// new run assigns.
#[test]
fn startup_establishes_a_snapshot_and_resets_the_wal() {
    let dir = tmpdir("establish");
    let save = dir.join("corpus");
    let mut server =
        start_server(&["--save", save.to_str().unwrap(), "--wal", "--wal-sync-micros", "500"], &[]);
    let mut conn = Connection::open(&server.addr);
    for i in 0..4 {
        conn.roundtrip(&format!("INGEST flash {}\n", wire_trace(i)));
    }
    conn.roundtrip("SHUTDOWN\n");
    assert!(server.child.wait().expect("daemon exits").success());

    // Restart over the same durable root. The shutdown snapshot holds
    // e0..e3; the establishing save + truncate must leave the WAL empty.
    let mut reborn = start_server(
        &["--corpus", save.to_str().unwrap(), "--save", save.to_str().unwrap(), "--wal"],
        &[],
    );
    assert_eq!(wal_bytes_on_disk(&save), 0, "startup neutralised the old logs");
    let mut conn = Connection::open(&reborn.addr);
    let reply = conn.roundtrip(&format!("INGEST flash {}\n", wire_trace(4)));
    assert_eq!(reply[0], "OK id=4 name=e4 entries=5", "ids continue past the recovered corpus");
    let stats = conn.roundtrip("STATS\n");
    let wal_records: u64 = stats
        .iter()
        .find_map(|l| l.strip_prefix("STAT wal_records "))
        .expect("STATS exposes wal_records")
        .parse()
        .unwrap();
    assert_eq!(wal_records, 1, "exactly the post-establish ingest is in the new log");
    conn.roundtrip("SHUTDOWN\n");
    reborn.child.wait().expect("daemon exits");

    let restored = load_index(&save, IndexOptions::default()).expect("durable root loads");
    assert_eq!(restored.len(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Memory pressure and durability compose: drive a `--max-memory-bytes`
/// daemon until it sheds, then `kill -9` it. Every `OK`-acked ingest
/// must reload; every `ERR busy` shed must have left no entry and no id
/// gap (a gap would make WAL replay drop the records past it).
#[cfg(unix)]
#[test]
fn sigkill_under_memory_pressure_loses_no_acked_entry() {
    let dir = tmpdir("sigkill-pressure");
    let save = dir.join("corpus");
    let mut server = start_server(
        &[
            "--save",
            save.to_str().unwrap(),
            "--wal",
            "--wal-sync-micros",
            "500",
            "--max-memory-bytes",
            "8192",
        ],
        &[],
    );
    let mut conn = Connection::open(&server.addr);
    let (mut acked, mut sheds) = (0usize, 0usize);
    while sheds < 4 {
        let reply = conn.roundtrip(&format!("INGEST flash {}\n", wire_trace(acked)));
        if reply[0].starts_with("OK id=") {
            assert_eq!(
                reply[0],
                format!("OK id={acked} name=e{acked} entries={}", acked + 1),
                "sheds leave no id gap"
            );
            acked += 1;
        } else {
            assert_eq!(reply[0], "ERR busy reason=memory", "the only failure mode is the shed");
            sheds += 1;
        }
        assert!(acked + sheds < 1000, "an 8 KiB budget never filled");
    }
    assert!(acked > 0, "some ingests fit the budget before it filled");
    send_signal(&server.child, "-KILL");
    let _ = server.child.wait();

    let restored = load_index(&save, IndexOptions::default()).expect("durable root loads");
    assert_eq!(restored.len(), acked, "exactly the acked ingests reload — no shed leaked in");
    for i in 0..acked {
        assert_recovered(&restored, i, "flash");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--wal` without `--save` has no durable root to log under.
#[test]
fn wal_without_save_is_rejected() {
    let out = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["serve", "--port", "0", "--wal"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--wal needs --save"), "{stderr}");
}
