//! Protocol conformance suite: every verb in docs/PROTOCOL.md exercised
//! against a live `kastio serve` process, asserting the exact reply
//! bytes — happy paths, the documented error catalogue, size caps,
//! trailing garbage, blank lines and the HELLO handshake (including the
//! guarantee that every verb keeps working *without* one).
//!
//! The table entries are wire bytes, not parser calls: a rewording of an
//! error message or a reframed reply is a protocol change and must show
//! up here (and in docs/PROTOCOL.md) to land.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use kastio::index::protocol::{read_reply, MAX_BATCH_ITEMS, PROTOCOL_VERBS, PROTOCOL_VERSION};

struct ServerGuard {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The runtime under test: `KASTIO_TEST_RUNTIME=epoll` re-runs this whole
/// suite against the epoll reactor — the replies must stay byte-identical
/// to the threads runtime's (that equality *is* the runtime contract).
fn runtime_args() -> Vec<String> {
    match std::env::var("KASTIO_TEST_RUNTIME") {
        Ok(name) => vec!["--runtime".to_string(), name],
        Err(_) => Vec::new(),
    }
}

fn start_server(extra_args: &[&str]) -> ServerGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["serve", "--port", "0"])
        .args(runtime_args())
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("serve announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_string();
    ServerGuard { child, addr, _stdout: stdout }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> Connection {
        let stream = TcpStream::connect(addr).expect("client connects");
        Connection { reader: BufReader::new(stream.try_clone().expect("clone")), writer: stream }
    }

    fn send(&mut self, wire: &str) {
        self.writer.write_all(wire.as_bytes()).expect("request sent");
        self.writer.flush().expect("request flushed");
    }

    /// One request (possibly multi-line), one framed reply, exact bytes.
    fn roundtrip(&mut self, wire: &str) -> String {
        self.send(wire);
        read_reply(&mut self.reader).expect("reply read")
    }
}

/// The single-request table: each entry is sent on a fresh exchange of
/// one shared connection and must produce exactly the listed reply
/// bytes. The server has no --save directory and an empty corpus.
#[test]
fn request_reply_table_matches_the_spec_bytes() {
    let hello_ok = format!("OK kastio proto={PROTOCOL_VERSION} verbs={PROTOCOL_VERBS}\n");
    let over_cap = MAX_BATCH_ITEMS + 1;
    let table: Vec<(String, String)> = vec![
        // HELLO: negotiation, rejection, malformed forms.
        ("HELLO 1\n".into(), hello_ok.clone()),
        ("HELLO 1 kastio-conformance/0.1\n".into(), hello_ok.clone()),
        ("HELLO 7\n".into(), "ERR unsupported proto 7 (server speaks 1)\n".into()),
        ("HELLO\n".into(), "ERR HELLO needs `<proto-version> [client]`\n".into()),
        ("HELLO 0\n".into(), "ERR bad proto version `0` (expected a positive int)\n".into()),
        ("HELLO x\n".into(), "ERR bad proto version `x` (expected a positive int)\n".into()),
        (
            "HELLO 1 two tokens\n".into(),
            "ERR HELLO takes at most `<proto-version> [client]`\n".into(),
        ),
        // A repeated HELLO is fine: the handshake is stateless.
        ("HELLO 1\n".into(), hello_ok.clone()),
        // Unknown verbs and trailing garbage on the bare verbs. A bare
        // verb followed by tokens fails the `rest.is_empty()` guard and
        // is reported as an unknown verb — pinned here on purpose.
        ("FROB x\n".into(), "ERR unknown verb `FROB`\n".into()),
        ("STATS extra\n".into(), "ERR unknown verb `STATS`\n".into()),
        ("METRICS extra\n".into(), "ERR unknown verb `METRICS`\n".into()),
        ("SAVE now\n".into(), "ERR unknown verb `SAVE`\n".into()),
        ("SHUTDOWN please\n".into(), "ERR unknown verb `SHUTDOWN`\n".into()),
        ("hello 1\n".into(), "ERR unknown verb `hello`\n".into()),
        // INGEST / QUERY argument errors.
        ("INGEST onlylabel\n".into(), "ERR INGEST needs `<label> <trace>`\n".into()),
        ("QUERY k=2\n".into(), "ERR QUERY needs `k=<k> <trace>`\n".into()),
        (
            "QUERY k=0 h0 read 8\n".into(),
            "ERR bad k spec `k=0` (expected k=<positive int>)\n".into(),
        ),
        (
            "QUERY k=x h0 read 8\n".into(),
            "ERR bad k spec `k=x` (expected k=<positive int>)\n".into(),
        ),
        ("QUERY 3 h0 read 8\n".into(), "ERR bad k spec `3` (expected k=<positive int>)\n".into()),
        // Batch headers: malformed counts and the documented 4096 cap.
        ("BATCH\n".into(), "ERR BATCH needs `INGEST <count>`\n".into()),
        ("BATCH INGEST\n".into(), "ERR BATCH needs `INGEST <count>`\n".into()),
        ("BATCH QUERY 2\n".into(), "ERR BATCH needs `INGEST <count>`\n".into()),
        ("BATCH INGEST 0\n".into(), "ERR bad count `0` (expected a positive int)\n".into()),
        ("BATCH INGEST x\n".into(), "ERR bad count `x` (expected a positive int)\n".into()),
        (
            format!("BATCH INGEST {over_cap}\n"),
            format!("ERR count {over_cap} exceeds the batch cap of {MAX_BATCH_ITEMS}\n"),
        ),
        ("MQUERY k=2\n".into(), "ERR MQUERY needs `k=<k> <count>`\n".into()),
        ("MQUERY k=0 2\n".into(), "ERR bad k spec `k=0` (expected k=<positive int>)\n".into()),
        (
            format!("MQUERY k=1 {over_cap}\n"),
            format!("ERR count {over_cap} exceeds the batch cap of {MAX_BATCH_ITEMS}\n"),
        ),
        // SAVE without a configured save directory.
        ("SAVE\n".into(), "ERR no save directory (start the server with --save)\n".into()),
        // SLOWLOG: subcommand catalogue, exact empty-state replies. The
        // verb answers even without --slow-query-micros (the log is just
        // permanently empty then), so clients can always introspect.
        ("SLOWLOG\n".into(), "ERR SLOWLOG needs `GET|RESET|LEN`\n".into()),
        ("SLOWLOG FLUSH\n".into(), "ERR SLOWLOG needs `GET|RESET|LEN`\n".into()),
        ("SLOWLOG get\n".into(), "ERR SLOWLOG needs `GET|RESET|LEN`\n".into()),
        ("SLOWLOG LEN\n".into(), "OK slowlog len=0\n".into()),
        ("SLOWLOG GET\n".into(), "OK slowlog entries=0\nEND\n".into()),
        ("SLOWLOG RESET\n".into(), "OK slowlog reset\n".into()),
        // MQUERY against the empty corpus: zero matches, not an error.
        (
            "MQUERY k=1 1\nh0 read 8\n".into(),
            "OK queries=1\nRESULT 1 matches=0 label=-\nEND\n".into(),
        ),
    ];

    let server = start_server(&[]);
    let mut conn = Connection::open(&server.addr);
    for (request, expected) in &table {
        let reply = conn.roundtrip(request);
        assert_eq!(&reply, expected, "request {request:?}");
    }
    // One connection survived the whole table: errors never hang up.
    assert_eq!(conn.roundtrip("SHUTDOWN\n"), "OK bye\n");
}

/// The malformed-trace errors come from the trace parser; the table pins
/// the framing (`ERR ` + message + newline), deriving the message from
/// the same library call the server makes.
#[test]
fn malformed_trace_errors_carry_the_parser_message() {
    let server = start_server(&[]);
    let mut conn = Connection::open(&server.addr);

    let trace_err = kastio::index::protocol::decode_trace_inline("h0 read").unwrap_err();
    assert_eq!(conn.roundtrip("QUERY k=2 h0 read\n"), format!("ERR {trace_err}\n"));
    assert_eq!(conn.roundtrip("INGEST flash h0 read\n"), format!("ERR {trace_err}\n"));

    let bad_bytes = kastio::index::protocol::decode_trace_inline("h0 read lots").unwrap_err();
    assert_eq!(conn.roundtrip("QUERY k=1 h0 read lots\n"), format!("ERR {bad_bytes}\n"));
    conn.roundtrip("SHUTDOWN\n");
}

#[test]
fn ingest_query_and_batches_round_trip_without_hello() {
    let server = start_server(&[]);
    let mut conn = Connection::open(&server.addr);

    // Old-client compatibility: no HELLO anywhere on this connection.
    assert_eq!(
        conn.roundtrip("INGEST flash h0 open 0;h0 write 64;h0 write 64;h0 close 0\n"),
        "OK id=0 name=e0 entries=1\n"
    );
    assert_eq!(
        conn.roundtrip(
            "BATCH INGEST 2\nflash h0 write 64;h0 write 64\nposix h0 read 8;h0 read 8\n"
        ),
        "OK batch=2 entries=3\n"
    );

    // Querying an exact copy of e0: the self-match normalises to 1.
    let query = conn.roundtrip("QUERY k=1 h0 open 0;h0 write 64;h0 write 64;h0 close 0\n");
    assert_eq!(query, "OK matches=1 label=flash\nMATCH 1 e0 flash 1\nEND\n");

    let mquery = conn.roundtrip("MQUERY k=1 2\nh0 write 64;h0 write 64\nh0 read 8;h0 read 8\n");
    let lines: Vec<&str> = mquery.lines().collect();
    assert_eq!(lines[0], "OK queries=2");
    assert!(lines[1].starts_with("RESULT 1 matches=1 label="), "{mquery}");
    assert_eq!(*lines.last().unwrap(), "END");

    let stats = conn.roundtrip("STATS\n");
    assert!(stats.starts_with("STAT entries 3\n"), "{stats}");
    assert!(stats.ends_with("END\n"), "{stats}");
    // The whole exchange ran without a handshake — and the server's
    // verb counters saw none.
    assert!(stats.contains("STAT verb_hello 0\n"), "{stats}");

    assert_eq!(conn.roundtrip("SHUTDOWN\n"), "OK bye\n");
}

#[test]
fn bad_batch_items_consume_the_frame_and_report_position() {
    let server = start_server(&[]);
    let mut conn = Connection::open(&server.addr);

    // Item 1 is malformed; item 2 is valid but must NOT be ingested (the
    // batch already failed) — and both announced lines are consumed, so
    // the connection stays framed for the next request.
    assert_eq!(
        conn.roundtrip("BATCH INGEST 2\nonlylabel\nposix h0 read 8\n"),
        "ERR item 1/2: batch item needs `<label> <trace>`\n"
    );
    let stats = conn.roundtrip("STATS\n");
    assert!(stats.starts_with("STAT entries 0\n"), "nothing ingested: {stats}");

    // Same for MQUERY: a bad trace line mid-batch.
    assert_eq!(
        conn.roundtrip("MQUERY k=1 2\nh0 read 8\nh0 read\n"),
        format!(
            "ERR item 2/2: {}\n",
            kastio::index::protocol::decode_trace_inline("h0 read").unwrap_err()
        )
    );
    assert_eq!(conn.roundtrip("SHUTDOWN\n"), "OK bye\n");
}

#[test]
fn blank_lines_are_skipped_not_answered() {
    let server = start_server(&[]);
    let mut conn = Connection::open(&server.addr);

    // Empty and whitespace-only lines produce no reply at all: the next
    // reply on the connection belongs to the next real request.
    conn.send("\n\n   \n\t\nSTATS\n");
    let reply = read_reply(&mut conn.reader).expect("one reply");
    assert!(reply.starts_with("STAT entries 0\n"), "{reply}");

    // And requests keep their own replies afterwards (no desync).
    assert!(conn.roundtrip("HELLO 1\n").contains("proto=1"));
    assert_eq!(conn.roundtrip("SHUTDOWN\n"), "OK bye\n");
}

#[test]
fn hello_then_work_then_shutdown_with_save_dir() {
    let dir = std::env::temp_dir().join(format!("kastio-conformance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let save_dir = dir.join("corpus");
    let mut server = start_server(&["--save", save_dir.to_str().unwrap()]);
    let mut conn = Connection::open(&server.addr);

    assert!(conn.roundtrip("HELLO 1 conformance\n").starts_with("OK kastio proto=1 "));
    assert_eq!(
        conn.roundtrip("INGEST flash h0 write 64;h0 write 64\n"),
        "OK id=0 name=e0 entries=1\n"
    );
    assert_eq!(conn.roundtrip("SAVE\n"), "OK saved entries=1 generation=1\n");
    assert_eq!(conn.roundtrip("SHUTDOWN\n"), "OK bye saved=1 generation=1\n");
    assert!(server.child.wait().expect("server exits").success());
    assert!(save_dir.join("MANIFEST").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Under `--wal` the wire changes in exactly two observable ways: the
/// SAVE reply gains a ` wal=truncated` note and the STATS / METRICS WAL
/// counters go live. Everything else stays byte-identical.
#[test]
fn wal_mode_counters_and_save_reply_match_the_spec_bytes() {
    let dir = std::env::temp_dir().join(format!("kastio-conformance-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let save_dir = dir.join("corpus");
    let mut server = start_server(&["--save", save_dir.to_str().unwrap(), "--wal"]);
    let mut conn = Connection::open(&server.addr);

    // Ingest replies are unchanged by --wal (only their timing moves:
    // the OK is written after the covering fsync).
    assert_eq!(
        conn.roundtrip("INGEST flash h0 write 64;h0 write 64\n"),
        "OK id=0 name=e0 entries=1\n"
    );

    // The acked record is on the log and fsync'd; STATS says so.
    let stats = conn.roundtrip("STATS\n");
    assert!(stats.contains("STAT wal_records 1\n"), "{stats}");
    assert!(
        stats.contains("STAT last_replay_records 0\n"),
        "fresh start replayed nothing: {stats}"
    );
    let stat_value = |reply: &str, key: &str| -> u64 {
        reply
            .lines()
            .find_map(|l| l.strip_prefix(&format!("STAT {key} ")))
            .unwrap_or_else(|| panic!("no {key} in {reply}"))
            .parse()
            .expect("integer stat")
    };
    assert!(stat_value(&stats, "wal_bytes") > 0, "{stats}");
    assert!(stat_value(&stats, "wal_fsyncs") >= 1, "the ack waited for a covering fsync: {stats}");

    // SAVE is a compaction point and the reply says so — exact bytes.
    // The generation is the corpus size the snapshot covers.
    assert_eq!(conn.roundtrip("SAVE\n"), "OK saved entries=1 generation=1 wal=truncated\n");

    // METRICS exposes the same counters as Prometheus families.
    let metrics = conn.roundtrip("METRICS\n");
    assert!(metrics.contains("kastio_wal_records_total 1\n"), "{metrics}");
    assert!(metrics.contains("kastio_wal_replay_records 0\n"), "{metrics}");

    // SHUTDOWN's own save re-covers the same corpus — its reply shape
    // is unchanged by --wal.
    assert_eq!(conn.roundtrip("SHUTDOWN\n"), "OK bye saved=1 generation=1\n");
    assert!(server.child.wait().expect("server exits").success());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stats_reports_metrics_counters_in_documented_order() {
    let server = start_server(&[]);
    let mut conn = Connection::open(&server.addr);
    conn.roundtrip("HELLO 1\n");
    conn.roundtrip("INGEST flash h0 write 64;h0 write 64\n");
    conn.roundtrip("FROB\n");
    let stats = conn.roundtrip("STATS\n");

    // The metrics block keys, in the exact order PROTOCOL.md documents.
    let keys: Vec<&str> = stats
        .lines()
        .filter_map(|l| l.strip_prefix("STAT "))
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    let metrics_keys = [
        "uptime_secs",
        "connections",
        "requests_total",
        "request_errors",
        "verb_hello",
        "verb_ingest",
        "verb_batch_ingest",
        "verb_query",
        "verb_mquery",
        "verb_stats",
        "verb_save",
        "verb_shutdown",
        "verb_metrics",
        "verb_slowlog",
        // The memory-governance block: rendered (as zeros) even without
        // --max-memory-bytes, like the WAL block, so parsers never
        // branch on configuration.
        "mem_used_bytes",
        "mem_limit_bytes",
        "mem_unreclaimable_bytes",
        "mem_reclaims",
        "shed_memory",
        "shed_connections",
        "timeouts",
    ];
    let start = keys.iter().position(|&k| k == "uptime_secs").expect("metrics block present");
    assert_eq!(&keys[start..start + metrics_keys.len()], &metrics_keys);
    for key in [
        "mem_used_bytes",
        "mem_limit_bytes",
        "mem_unreclaimable_bytes",
        "shed_memory",
        "shed_connections",
        "timeouts",
    ] {
        assert!(stats.contains(&format!("STAT {key} 0\n")), "{key} zero when ungoverned: {stats}");
    }

    // The WAL block sits immediately before the metrics block and is
    // rendered even without --wal (all zeros), so parsers never branch
    // on the daemon's configuration.
    let wal_keys = ["wal_records", "wal_bytes", "wal_fsyncs", "last_replay_records"];
    let wal_start = keys.iter().position(|&k| k == "wal_records").expect("wal block present");
    assert_eq!(&keys[wal_start..wal_start + wal_keys.len()], &wal_keys);
    assert_eq!(wal_start + wal_keys.len(), start, "wal block directly precedes uptime_secs");
    for key in wal_keys {
        assert!(stats.contains(&format!("STAT {key} 0\n")), "{key} is zero without --wal: {stats}");
    }

    // And the counters reflect this connection's traffic exactly:
    // HELLO + INGEST + FROB + STATS = 4 requests, 1 error.
    assert!(stats.contains("STAT connections 1\n"), "{stats}");
    assert!(stats.contains("STAT requests_total 4\n"), "{stats}");
    assert!(stats.contains("STAT request_errors 1\n"), "{stats}");
    assert!(stats.contains("STAT verb_hello 1\n"), "{stats}");
    assert!(stats.contains("STAT verb_ingest 1\n"), "{stats}");
    assert!(stats.contains("STAT verb_stats 1\n"), "{stats}");
    conn.roundtrip("SHUTDOWN\n");
}

/// METRICS: framed Prometheus-style text exposition whose counters match
/// the connection's traffic and whose latency buckets are cumulative.
#[test]
fn metrics_exposition_is_framed_and_internally_consistent() {
    let server = start_server(&[]);
    let mut conn = Connection::open(&server.addr);
    conn.roundtrip("HELLO 1\n");
    conn.roundtrip("INGEST flash h0 write 64;h0 write 64\n");
    conn.roundtrip("QUERY k=1 h0 write 64;h0 write 64\n");
    conn.roundtrip("QUERY k=1 h0 write 64\n");
    let reply = conn.roundtrip("METRICS\n");

    // Framing: header line, END terminator, and no interior line that
    // could be mistaken for the terminator.
    assert!(reply.starts_with("OK metrics\n"), "{reply}");
    assert!(reply.ends_with("END\n"), "{reply}");
    let body: Vec<&str> = reply.lines().collect();
    assert_eq!(*body.last().unwrap(), "END");
    assert!(!body[1..body.len() - 1].contains(&"END"), "END only terminates");

    // Counters reflect this connection: HELLO + INGEST + 2x QUERY, plus
    // METRICS itself (counted at dispatch, before its reply renders).
    assert!(reply.contains("kastio_connections_total 1\n"), "{reply}");
    assert!(reply.contains("kastio_requests_total 5\n"), "{reply}");
    assert!(reply.contains("kastio_verb_requests_total{verb=\"metrics\"} 1\n"), "{reply}");
    assert!(reply.contains("kastio_verb_requests_total{verb=\"query\"} 2\n"), "{reply}");
    assert!(reply.contains("kastio_verb_requests_total{verb=\"ingest\"} 1\n"), "{reply}");
    assert!(reply.contains("# TYPE kastio_request_latency_ns histogram"), "{reply}");
    assert!(reply.contains("# TYPE kastio_stage_latency_ns histogram"), "{reply}");
    assert!(reply.contains("kastio_slowlog_entries 0\n"), "{reply}");

    // The memory-governance families are exposed (as zeros) even
    // without --max-memory-bytes.
    assert!(reply.contains("# TYPE kastio_mem_used_bytes gauge\n"), "{reply}");
    assert!(reply.contains("kastio_mem_used_bytes 0\n"), "{reply}");
    assert!(reply.contains("# TYPE kastio_mem_limit_bytes gauge\n"), "{reply}");
    assert!(reply.contains("kastio_mem_limit_bytes 0\n"), "{reply}");
    assert!(reply.contains("# TYPE kastio_mem_unreclaimable_bytes gauge\n"), "{reply}");
    assert!(reply.contains("kastio_mem_unreclaimable_bytes 0\n"), "{reply}");
    assert!(reply.contains("kastio_mem_reclaims_total 0\n"), "{reply}");
    assert!(reply.contains("# TYPE kastio_shed_total counter\n"), "{reply}");
    assert!(reply.contains("kastio_shed_total{reason=\"memory\"} 0\n"), "{reply}");
    assert!(reply.contains("kastio_shed_total{reason=\"connections\"} 0\n"), "{reply}");
    assert!(reply.contains("kastio_timeouts_total 0\n"), "{reply}");

    // The WAL families are exposed (as zeros) even without --wal.
    assert!(reply.contains("# TYPE kastio_wal_records_total counter\n"), "{reply}");
    assert!(reply.contains("kastio_wal_records_total 0\n"), "{reply}");
    assert!(reply.contains("kastio_wal_bytes_total 0\n"), "{reply}");
    assert!(reply.contains("kastio_wal_fsyncs_total 0\n"), "{reply}");
    assert!(reply.contains("# TYPE kastio_wal_replay_records gauge\n"), "{reply}");
    assert!(reply.contains("kastio_wal_replay_records 0\n"), "{reply}");

    // The QUERY latency series: cumulative buckets ending in `+Inf`,
    // whose final count equals the _count sample and the verb counter.
    let query_buckets: Vec<u64> = body
        .iter()
        .filter_map(|l| l.strip_prefix("kastio_request_latency_ns_bucket{verb=\"query\",le=\""))
        .map(|rest| {
            let (_, count) = rest.split_once("\"} ").expect("bucket sample shape");
            count.parse().expect("bucket count")
        })
        .collect();
    assert!(!query_buckets.is_empty(), "QUERY histogram exposed: {reply}");
    assert!(query_buckets.windows(2).all(|w| w[0] <= w[1]), "cumulative: {query_buckets:?}");
    assert_eq!(*query_buckets.last().unwrap(), 2, "both queries counted");
    assert!(
        reply.contains("kastio_request_latency_ns_bucket{verb=\"query\",le=\"+Inf\"} 2\n"),
        "{reply}"
    );
    assert!(reply.contains("kastio_request_latency_ns_count{verb=\"query\"} 2\n"), "{reply}");
    assert!(
        reply.contains("kastio_request_latency_us{verb=\"query\",quantile=\"0.99\"}"),
        "{reply}"
    );
    conn.roundtrip("SHUTDOWN\n");
}

/// `trace=1`: the reply gains exactly one TRACE line before END whose
/// stage sum never exceeds its total — and the flag changes nothing else.
#[test]
fn traced_queries_report_a_consistent_stage_breakdown() {
    let server = start_server(&[]);
    let mut conn = Connection::open(&server.addr);
    conn.roundtrip("INGEST flash h0 write 64;h0 write 64\n");

    let plain = conn.roundtrip("QUERY k=1 h0 write 64;h0 write 64\n");
    assert!(!plain.contains("TRACE"), "untraced replies are unchanged: {plain}");

    let traced = conn.roundtrip("QUERY k=1 trace=1 h0 write 64;h0 write 64\n");
    let trace_line = traced
        .lines()
        .find(|l| l.starts_with("TRACE "))
        .unwrap_or_else(|| panic!("no TRACE line in {traced:?}"));
    // Same reply minus the TRACE line — the flag only adds the line.
    assert_eq!(traced.replace(&format!("{trace_line}\n"), ""), plain);
    assert!(traced.ends_with(&format!("{trace_line}\nEND\n")), "TRACE sits before END");

    let mut total = None;
    let mut stage_sum = 0u64;
    for field in trace_line.trim_start_matches("TRACE ").split(' ') {
        let (key, value) = field.split_once('=').expect("key=value fields");
        let value: u64 = value.parse().expect("integer microseconds");
        match key {
            "total_us" => total = Some(value),
            "parse_us" | "prefilter_us" | "cache_us" | "kernel_us" => stage_sum += value,
            other => panic!("unexpected TRACE field {other}"),
        }
    }
    assert!(stage_sum <= total.expect("total_us present"), "{trace_line}");

    // MQUERY takes the same flag.
    let mtraced = conn.roundtrip("MQUERY k=1 trace=1 2\nh0 write 64\nh0 read 8\n");
    assert_eq!(mtraced.lines().filter(|l| l.starts_with("TRACE ")).count(), 1, "{mtraced}");
    conn.roundtrip("SHUTDOWN\n");
}

/// The slow-query log over the wire, enabled via --slow-query-micros.
/// Threshold 0 logs every request — deterministic for a conformance run.
#[test]
fn slowlog_records_and_resets_over_the_wire() {
    let server = start_server(&["--slow-query-micros", "0"]);
    let mut conn = Connection::open(&server.addr);
    conn.roundtrip("INGEST flash h0 write 64;h0 write 64\n");
    conn.roundtrip("QUERY k=3 h0 write 64\n");

    assert_eq!(conn.roundtrip("SLOWLOG LEN\n"), "OK slowlog len=2\n");
    let log = conn.roundtrip("SLOWLOG GET\n");
    let lines: Vec<&str> = log.lines().collect();
    // Newest first: the LEN request itself, then QUERY, then INGEST.
    assert_eq!(lines[0], "OK slowlog entries=3");
    assert!(lines[1].contains(" verb=SLOWLOG ") && lines[1].contains(" args=LEN"), "{log}");
    assert!(lines[2].contains(" verb=QUERY ") && lines[2].contains(" args=k=3"), "{log}");
    assert!(lines[3].contains(" verb=INGEST ") && lines[3].contains(" args=label=flash"), "{log}");
    assert_eq!(*lines.last().unwrap(), "END");
    // Every entry carries id, timestamp, duration and a stage breakdown.
    for entry in &lines[1..4] {
        assert!(entry.starts_with("SLOW "), "{entry}");
        assert!(entry.contains(" at_us=") && entry.contains(" total_us="), "{entry}");
        assert!(entry.contains(" stages=parse:"), "{entry}");
    }

    assert_eq!(conn.roundtrip("SLOWLOG RESET\n"), "OK slowlog reset\n");
    // Only the RESET itself (logged after it answered) remains.
    assert_eq!(conn.roundtrip("SLOWLOG LEN\n"), "OK slowlog len=1\n");
    conn.roundtrip("SHUTDOWN\n");
}

/// The request-line size cap: a line over 1 MiB is answered with the
/// exact documented error, the oversized line is drained, and the
/// connection stays framed — the next request gets its own reply.
#[test]
fn oversized_lines_get_the_documented_error_and_a_drained_connection() {
    let server = start_server(&[]);
    let mut conn = Connection::open(&server.addr);

    let mut line = "QUERY k=1 ".to_string();
    line.push_str(&"h0 read 8;".repeat(120_000)); // ~1.2 MiB, over the 1 MiB cap
    line.push('\n');
    assert_eq!(conn.roundtrip(&line), "ERR line too long\n");

    // Framing intact: the very next request works on the same connection.
    assert_eq!(
        conn.roundtrip("INGEST flash h0 write 64;h0 write 64\n"),
        "OK id=0 name=e0 entries=1\n"
    );
    // An oversized *item line* inside a batch reports the same error and
    // also keeps the frame (remaining announced lines are consumed).
    let fat_item = format!("flash {}\n", "h0 read 8;".repeat(120_000));
    assert_eq!(
        conn.roundtrip(&format!("BATCH INGEST 2\n{fat_item}posix h0 read 8\n")),
        "ERR line too long\n"
    );
    let stats = conn.roundtrip("STATS\n");
    assert!(stats.contains("STAT entries 1\n"), "failed batch ingested nothing: {stats}");
    assert_eq!(conn.roundtrip("SHUTDOWN\n"), "OK bye\n");
}

/// Memory governance over the wire: with a tiny --max-memory-bytes the
/// daemon sheds ingests with the exact documented busy error, keeps the
/// connection open, keeps answering reads, and counts each shed.
#[test]
fn memory_governed_server_sheds_with_the_documented_busy_error() {
    let server = start_server(&["--max-memory-bytes", "4096"]);
    let mut conn = Connection::open(&server.addr);

    assert_eq!(
        conn.roundtrip("INGEST flash h0 write 64;h0 write 64\n"),
        "OK id=0 name=e0 entries=1\n"
    );
    // ~100 ops ≈ 5 KiB of corpus footprint: over the 4 KiB budget.
    let fat = format!("INGEST flash {}\n", "h0 write 64;".repeat(100));
    assert_eq!(conn.roundtrip(&fat), "ERR busy reason=memory\n");

    // Reads still work, the corpus did not grow, and the shed is counted.
    assert!(conn.roundtrip("QUERY k=1 h0 write 64;h0 write 64\n").starts_with("OK matches=1"));
    let stats = conn.roundtrip("STATS\n");
    assert!(stats.contains("STAT entries 1\n"), "{stats}");
    assert!(stats.contains("STAT shed_memory 1\n"), "{stats}");
    assert!(stats.contains("STAT mem_limit_bytes 4096\n"), "{stats}");
    assert_eq!(conn.roundtrip("SHUTDOWN\n"), "OK bye\n");
}

/// Connection admission control: --max-connections 1 sheds the second
/// concurrent connection with the documented busy error before reading
/// anything from it, then hangs up.
#[test]
fn connection_cap_sheds_with_the_documented_busy_error() {
    let server = start_server(&["--max-connections", "1"]);
    let mut first = Connection::open(&server.addr);
    assert!(first.roundtrip("HELLO 1\n").starts_with("OK kastio proto="));

    let mut second = Connection::open(&server.addr);
    let mut reply = String::new();
    second.reader.read_line(&mut reply).expect("shed notice");
    assert_eq!(reply, "ERR busy reason=connections\n");
    reply.clear();
    assert_eq!(second.reader.read_line(&mut reply).expect("EOF"), 0, "server hung up");

    let stats = first.roundtrip("STATS\n");
    assert!(stats.contains("STAT shed_connections 1\n"), "{stats}");
    assert!(stats.contains("STAT request_errors 0\n"), "sheds are not request errors: {stats}");
    assert_eq!(first.roundtrip("SHUTDOWN\n"), "OK bye\n");
}
