//! End-to-end test of the `kastio serve` daemon and `kastio query` client:
//! a server on an ephemeral port, an IOR/FLASH-style corpus ingested over
//! the wire, and the acceptance contract that indexed k-NN answers are
//! bit-identical to direct `KastKernel::normalized` evaluations while the
//! prefilter keeps the kernel off most of the corpus.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use kastio::index::protocol::{encode_trace_inline, read_reply};
use kastio::workloads::generators::{flash_io, random_posix, FlashIoParams, RandomPosixParams};
use kastio::{
    pattern_string, ByteMode, KastKernel, KastOptions, StringKernel, TokenInterner, Trace,
};

/// Kills the serve daemon if a test panics before SHUTDOWN. Keeps the
/// stdout pipe open so the daemon's own prints never hit EPIPE.
struct ServerGuard {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn start_server(extra_args: &[&str]) -> ServerGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["serve", "--port", "0"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("serve announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_string();
    ServerGuard { child, addr, _stdout: stdout }
}

/// The labelled corpus: FLASH-IO checkpoint writers of growing size and
/// random-POSIX readers of growing length, so every entry is distinct and
/// the two families have clearly different scalar signatures.
fn corpus() -> Vec<(String, Trace)> {
    let mut entries = Vec::new();
    for i in 0..6 {
        let trace = flash_io(&FlashIoParams {
            files: 2 + i % 3,
            blocks: 10 + 4 * i,
            ..FlashIoParams::default()
        });
        entries.push(("flash".to_string(), trace));
    }
    for i in 0..6 {
        let trace = random_posix(
            &RandomPosixParams {
                write_iterations: 8 + 4 * i,
                read_iterations: 8 + 4 * i,
                ..RandomPosixParams::default()
            },
            41 + i as u64,
        );
        entries.push(("posix".to_string(), trace));
    }
    entries
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> Connection {
        let stream = TcpStream::connect(addr).expect("client connects");
        Connection { reader: BufReader::new(stream.try_clone().expect("clone")), writer: stream }
    }

    fn send(&mut self, request: &str) {
        self.writer.write_all(request.as_bytes()).expect("request sent");
        self.writer.flush().expect("request flushed");
    }

    /// Sends a request and collects the (single- or multi-line) reply.
    fn roundtrip(&mut self, request: &str) -> Vec<String> {
        self.send(request);
        let reply = read_reply(&mut self.reader).expect("reply read");
        reply.lines().map(str::to_string).collect()
    }
}

fn stat_value(stats: &[String], key: &str) -> u64 {
    stats
        .iter()
        .find_map(|line| line.strip_prefix(&format!("STAT {key} ")))
        .unwrap_or_else(|| panic!("stats reply has {key}: {stats:?}"))
        .parse()
        .expect("stat value is integral")
}

#[test]
fn serve_query_roundtrip_is_bit_identical_and_prefiltered() {
    // Budget: max(--candidates 4, k·4) with k=2 → 8 of 12 entries scored.
    let server = start_server(&["--candidates", "4"]);
    let corpus = corpus();
    let mut conn = Connection::open(&server.addr);

    for (i, (label, trace)) in corpus.iter().enumerate() {
        let reply = conn.roundtrip(&format!("INGEST {label} {}\n", encode_trace_inline(trace)));
        assert_eq!(reply, vec![format!("OK id={i} name=e{i} entries={}", i + 1)]);
    }

    // Query with an exact copy of corpus entry e2 (a flash writer). Its
    // signature distance to e2 is exactly 0, so the flash family tops the
    // prefilter ranking. Note the *kernel* argmax need not be e2 itself:
    // the Kast feature space is pair-dependent, so cosine-normalised
    // similarity of a repetitive sibling can legitimately exceed 1 (see
    // the `StringKernel::normalized` docs) — the ground truth below is
    // the direct evaluation, not the identity pair.
    let query_trace = corpus[2].1.clone();
    let reply = conn.roundtrip(&format!("QUERY k=2 {}\n", encode_trace_inline(&query_trace)));
    assert_eq!(reply[0], "OK matches=2 label=flash", "reply: {reply:?}");
    assert_eq!(reply.len(), 4, "two MATCH lines plus END: {reply:?}");

    // Direct evaluation: one shared interner over corpus + query, the same
    // kernel configuration the server defaults to.
    let mut interner = TokenInterner::new();
    let strings: Vec<_> = corpus
        .iter()
        .map(|(_, trace)| interner.intern_string(&pattern_string(trace, ByteMode::Preserve)))
        .collect();
    let query = interner.intern_string(&pattern_string(&query_trace, ByteMode::Preserve));
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let direct: Vec<f64> = strings.iter().map(|s| kernel.normalized(&query, s)).collect();
    let direct_best =
        (0..direct.len()).max_by(|&a, &b| direct[a].partial_cmp(&direct[b]).unwrap()).unwrap();

    for (rank, line) in reply[1..reply.len() - 1].iter().enumerate() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields[0], "MATCH");
        assert_eq!(fields[1], (rank + 1).to_string());
        let entry: usize = fields[2].strip_prefix('e').expect("server names").parse().unwrap();
        let similarity: f64 = fields[4].parse().expect("similarity parses");
        assert_eq!(
            similarity.to_bits(),
            direct[entry].to_bits(),
            "e{entry}: served similarity must be bit-identical to direct evaluation \
             ({similarity} vs {})",
            direct[entry]
        );
    }
    let top: Vec<&str> = reply[1].split_whitespace().collect();
    assert_eq!(
        top[2],
        format!("e{direct_best}"),
        "served nearest neighbour is the direct-evaluation argmax"
    );
    assert_eq!(top[3], "flash");

    // The prefilter kept the kernel off a third of the corpus.
    let stats = conn.roundtrip("STATS\n");
    assert_eq!(stat_value(&stats, "entries"), 12);
    assert_eq!(stat_value(&stats, "queries"), 1);
    assert_eq!(stat_value(&stats, "kernel_evals"), 8, "budget of 8 candidates evaluated");
    assert_eq!(stat_value(&stats, "prefilter_pruned"), 4, "4 of 12 never reached the kernel");
    assert_eq!(stat_value(&stats, "ingest_evals"), 12);

    // Same query again: answered entirely from the LRU cache.
    let cached = conn.roundtrip(&format!("QUERY k=2 {}\n", encode_trace_inline(&query_trace)));
    assert_eq!(cached, reply, "cached reply is identical");
    let stats = conn.roundtrip("STATS\n");
    assert_eq!(stat_value(&stats, "kernel_evals"), 8, "no new kernel work");
    assert_eq!(stat_value(&stats, "cache_hits"), 8);

    let bye = conn.roundtrip("SHUTDOWN\n");
    assert_eq!(bye, vec!["OK bye"]);
}

#[test]
fn query_client_subcommand_roundtrips() {
    let server = start_server(&[]);
    let mut conn = Connection::open(&server.addr);
    let corpus = corpus();
    for (label, trace) in &corpus {
        conn.roundtrip(&format!("INGEST {label} {}\n", encode_trace_inline(trace)));
    }

    let dir = std::env::temp_dir().join(format!("kastio-query-client-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_file = dir.join("q.trace");
    std::fs::write(&trace_file, kastio::write_trace(&corpus[0].1)).unwrap();

    // No --candidates flag: the default budget covers the whole corpus,
    // so the client's top match is the global direct-evaluation argmax.
    let mut interner = TokenInterner::new();
    let strings: Vec<_> = corpus
        .iter()
        .map(|(_, trace)| interner.intern_string(&pattern_string(trace, ByteMode::Preserve)))
        .collect();
    let query = interner.intern_string(&pattern_string(&corpus[0].1, ByteMode::Preserve));
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let direct_best = (0..strings.len())
        .max_by(|&a, &b| {
            kernel
                .normalized(&query, &strings[a])
                .partial_cmp(&kernel.normalized(&query, &strings[b]))
                .unwrap()
        })
        .unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["query", &server.addr, trace_file.to_str().unwrap(), "--k", "3"])
        .output()
        .expect("query client runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("OK matches=3 label=flash"), "{stdout}");
    assert!(stdout.contains(&format!("MATCH 1 e{direct_best} flash ")), "{stdout}");
    assert!(stdout.trim_end().ends_with("END"), "{stdout}");

    let out = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["query", &server.addr, "--stats"])
        .output()
        .expect("stats client runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("STAT entries 12"), "{stdout}");

    conn.roundtrip("SHUTDOWN\n");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_persists_corpus_on_shutdown_and_reloads_it() {
    let dir = std::env::temp_dir().join(format!("kastio-serve-save-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let save_dir = dir.join("corpus");

    let mut server = start_server(&["--save", save_dir.to_str().unwrap()]);
    let mut conn = Connection::open(&server.addr);
    conn.roundtrip("INGEST flash h0 open 0;h0 write 64;h0 write 64;h0 close 0\n");
    conn.roundtrip("INGEST posix h0 lseek 0;h0 read 8;h0 lseek 0;h0 read 8\n");
    // The save happens *before* the reply, and the reply reports it.
    let bye = conn.roundtrip("SHUTDOWN\n");
    assert_eq!(bye, vec!["OK bye saved=2 generation=2"]);
    let status = server.child.wait().expect("server exits");
    assert!(status.success());

    assert!(save_dir.join("MANIFEST").exists());
    assert!(save_dir.join("e0.trace").exists());

    // A second server preloads the saved corpus.
    let server = start_server(&["--corpus", save_dir.to_str().unwrap()]);
    let mut conn = Connection::open(&server.addr);
    let stats = conn.roundtrip("STATS\n");
    assert_eq!(stat_value(&stats, "entries"), 2);
    assert_eq!(stat_value(&stats, "generation"), 2, "the reload replays both ingests");
    let reply = conn.roundtrip("QUERY k=1 h0 open 0;h0 write 64;h0 write 64;h0 close 0\n");
    assert_eq!(reply[0], "OK matches=1 label=flash");
    conn.roundtrip("SHUTDOWN\n");
    std::fs::remove_dir_all(&dir).unwrap();
}
