//! Reactor edge cases, pinned to `--runtime epoll` (the suite is
//! Linux-only, like the runtime): maximal TCP fragmentation, pipelined
//! bursts, half-close with a trailing partial line, idle-connection
//! reaping, and a slow reader whose backed-up replies must not stall
//! anyone else. The generic conformance and concurrent-serve suites also
//! run against epoll via `KASTIO_TEST_RUNTIME`; this file holds the
//! cases that specifically stress the reactor's state machine
//! (`LineFramer` reassembly, write buffering with paused reads,
//! timer-tick reaping) rather than the protocol.
#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use kastio::index::protocol::read_reply;

struct ServerGuard {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn start_epoll_server(extra_args: &[&str]) -> ServerGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["serve", "--port", "0", "--runtime", "epoll"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("serve announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_string();
    ServerGuard { child, addr, _stdout: stdout }
}

fn stat_value(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|line| line.strip_prefix(&format!("STAT {key} ")))
        .unwrap_or_else(|| panic!("no STAT {key} in {stats}"))
        .parse()
        .unwrap_or_else(|e| panic!("non-numeric STAT {key}: {e}"))
}

/// Writes the request one byte per syscall, with TCP_NODELAY so each
/// byte really goes out as its own segment — the `LineFramer` sees the
/// worst case: every `epoll_wait` wakeup delivers one byte.
fn send_byte_at_a_time(writer: &mut TcpStream, wire: &str) {
    for byte in wire.as_bytes() {
        writer.write_all(std::slice::from_ref(byte)).expect("byte sent");
        writer.flush().expect("byte flushed");
    }
}

#[test]
fn reactor_reassembles_requests_split_to_single_bytes() {
    let server = start_epoll_server(&[]);
    let stream = TcpStream::connect(&server.addr).expect("client connects");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    send_byte_at_a_time(&mut writer, "HELLO 1 epoll-split\n");
    assert!(read_reply(&mut reader).unwrap().starts_with("OK kastio proto=1 "));

    // Batched forms arrive fragmented too: the header commits the
    // reactor to collecting item lines across many partial reads.
    send_byte_at_a_time(
        &mut writer,
        "BATCH INGEST 2\nflash h0 write 64;h0 write 64\nposix h0 read 8;h0 read 8\n",
    );
    assert_eq!(read_reply(&mut reader).unwrap(), "OK batch=2 entries=2\n");

    send_byte_at_a_time(&mut writer, "MQUERY k=1 2\nh0 write 64;h0 write 64\nh0 read 8\n");
    let mquery = read_reply(&mut reader).unwrap();
    assert!(mquery.starts_with("OK queries=2\n"), "{mquery}");
    assert!(mquery.ends_with("END\n"), "{mquery}");

    // A trailing request *without* its newline, then half-close:
    // read_line semantics say the partial line is still served — the
    // reactor's framer must honour that via finish().
    send_byte_at_a_time(&mut writer, "STATS");
    writer.shutdown(Shutdown::Write).expect("half-close");
    let stats = read_reply(&mut reader).unwrap();
    assert!(stats.starts_with("STAT entries 2\n"), "{stats}");
    // After answering the EOF tail the reactor hangs up.
    let mut line = String::new();
    assert_eq!(reader.read_line(&mut line).expect("clean hangup"), 0, "{line}");

    // The server is still healthy for the next connection.
    let shutdown = TcpStream::connect(&server.addr).expect("second client");
    let mut shutdown_writer = shutdown.try_clone().expect("clone");
    let mut shutdown_reader = BufReader::new(shutdown);
    shutdown_writer.write_all(b"SHUTDOWN\n").expect("shutdown sent");
    assert_eq!(read_reply(&mut shutdown_reader).unwrap(), "OK bye\n");
}

#[test]
fn reactor_answers_pipelined_requests_in_order() {
    let server = start_epoll_server(&[]);
    let stream = TcpStream::connect(&server.addr).expect("client connects");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Everything in one segment, including a batch whose item lines ride
    // in the same write as later requests — one reply each, in order.
    // The reactor reads the whole burst into its framer at once, then
    // must hold the one-request-at-a-time discipline while draining it.
    writer
        .write_all(
            "HELLO 1 pipelined\n\
             INGEST flash h0 write 64;h0 write 64\n\
             BATCH INGEST 2\nflash h0 write 64\nposix h0 read 8\n\
             QUERY k=1 h0 write 64;h0 write 64\n\
             STATS\n\
             SHUTDOWN\n"
                .as_bytes(),
        )
        .expect("pipelined write");
    writer.flush().expect("flush");

    assert!(read_reply(&mut reader).unwrap().starts_with("OK kastio proto=1 "));
    assert_eq!(read_reply(&mut reader).unwrap(), "OK id=0 name=e0 entries=1\n");
    assert_eq!(read_reply(&mut reader).unwrap(), "OK batch=2 entries=3\n");
    let query = read_reply(&mut reader).unwrap();
    assert!(query.starts_with("OK matches=1"), "{query}");
    let stats = read_reply(&mut reader).unwrap();
    assert!(stats.starts_with("STAT entries 3\n"), "{stats}");
    assert_eq!(read_reply(&mut reader).unwrap(), "OK bye\n");
}

#[test]
fn reactor_reaps_idle_connections_on_its_timer_tick() {
    let server = start_epoll_server(&["--idle-timeout-secs", "1"]);

    // Two silent connections: the reactor (which has no per-socket read
    // deadline — reaping rides the epoll_wait timeout tick) must hang up
    // on both. The client-side read timeout turns a reaping failure into
    // a fast test failure instead of a hang.
    let idle_a = TcpStream::connect(&server.addr).expect("idle a");
    let idle_b = TcpStream::connect(&server.addr).expect("idle b");
    for idle in [idle_a, idle_b] {
        idle.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout set");
        let mut reader = BufReader::new(idle);
        let mut line = String::new();
        // The server closes us: clean EOF, not an error or a stray reply.
        assert_eq!(reader.read_line(&mut line).expect("server hangs up"), 0, "{line}");
    }

    // An active connection arriving after the reaping is served, and the
    // reaps were counted as timeouts.
    let fresh = TcpStream::connect(&server.addr).expect("fresh client");
    let mut writer = fresh.try_clone().expect("clone");
    let mut reader = BufReader::new(fresh);
    writer.write_all(b"STATS\n").expect("stats sent");
    let stats = read_reply(&mut reader).expect("stats reply");
    assert_eq!(stat_value(&stats, "timeouts"), 2, "{stats}");

    writer.write_all(b"SHUTDOWN\n").expect("shutdown sent");
    assert_eq!(read_reply(&mut reader).unwrap(), "OK bye\n");
}

#[test]
fn slow_reader_backpressure_does_not_stall_other_connections() {
    let server = start_epoll_server(&[]);

    // Seed a few entries so QUERY replies carry MATCH lines (bulkier
    // replies fill the slow reader's socket buffer sooner).
    let seed = TcpStream::connect(&server.addr).expect("seeder connects");
    let mut seed_writer = seed.try_clone().expect("clone");
    let mut seed_reader = BufReader::new(seed);
    seed_writer
        .write_all(b"BATCH INGEST 3\nflash h0 write 64;h0 write 64\nposix h0 read 8;h0 read 8\nckpt h0 write 4096;h0 fsync 0\n")
        .expect("seed batch");
    assert_eq!(read_reply(&mut seed_reader).unwrap(), "OK batch=3 entries=3\n");

    // The slow reader: pipelines a large burst of queries and then does
    // NOT read a single reply byte. Its replies pile into its socket
    // send buffer and then the reactor's per-connection write buffer;
    // the reactor parks the connection on EPOLLOUT and owes it the rest.
    const BURST: usize = 1000;
    let slow = TcpStream::connect(&server.addr).expect("slow client connects");
    let mut slow_writer = slow.try_clone().expect("clone");
    let mut burst = String::with_capacity(BURST * 36);
    for _ in 0..BURST {
        burst.push_str("QUERY k=3 h0 write 64;h0 write 64\n");
    }
    slow_writer.write_all(burst.as_bytes()).expect("burst written");
    slow_writer.flush().expect("burst flushed");

    // Meanwhile every *other* connection must be served promptly. The
    // read timeout is the stall detector: if the reactor thread were
    // blocked writing to (or working exclusively for) the slow reader,
    // these roundtrips would time out.
    let fast = TcpStream::connect(&server.addr).expect("fast client connects");
    fast.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout set");
    let mut fast_writer = fast.try_clone().expect("clone");
    let mut fast_reader = BufReader::new(fast);
    for _ in 0..20 {
        fast_writer.write_all(b"QUERY k=1 h0 read 8;h0 read 8\n").expect("fast query");
        let reply = read_reply(&mut fast_reader).expect("fast reply while slow reader lags");
        assert!(reply.starts_with("OK matches="), "{reply}");
    }

    // The slow reader finally drains: every one of its replies arrives,
    // correctly framed and in order — backpressure deferred them, lost
    // none.
    let mut slow_reader = BufReader::new(slow);
    for i in 0..BURST {
        let reply = read_reply(&mut slow_reader)
            .unwrap_or_else(|e| panic!("slow reply {i}/{BURST} failed: {e}"));
        assert!(reply.starts_with("OK matches=3"), "reply {i}: {reply}");
    }

    fast_writer.write_all(b"SHUTDOWN\n").expect("shutdown sent");
    assert_eq!(read_reply(&mut fast_reader).unwrap(), "OK bye\n");
}
