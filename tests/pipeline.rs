//! End-to-end integration of the trace substrate with the conversion
//! pipeline: SimFs recording → tree → compression → weighted string.

use kastio::trace::SeekWhence;
use kastio::{
    build_tree, compress_tree, flatten_tree, parse_trace, pattern_string, write_trace, ByteMode,
    CompressOptions, SimFs,
};

#[test]
fn recorded_application_produces_expected_string() -> Result<(), Box<dyn std::error::Error>> {
    let mut fs = SimFs::new();
    let fd = fs.open("data")?;
    for _ in 0..5 {
        fs.write(fd, 4096)?;
    }
    fs.close(fd)?;
    let fd = fs.open("data")?;
    for _ in 0..5 {
        fs.read(fd, 4096)?;
    }
    fs.close(fd)?;
    let s = pattern_string(&fs.into_trace(), ByteMode::Preserve);
    assert_eq!(
        s.to_string(),
        "[ROOT]x1 [HANDLE]x1 [BLOCK]x1 write[4096]x5 [LEVEL_UP]x1 [BLOCK]x1 read[4096]x5"
    );
    Ok(())
}

#[test]
fn lseek_write_loops_become_combined_tokens() -> Result<(), Box<dyn std::error::Error>> {
    let mut fs = SimFs::new();
    let fd = fs.open("db")?;
    fs.write(fd, 1 << 20)?;
    for i in 0..8 {
        fs.lseek(fd, i * 512, SeekWhence::Set)?;
        fs.write(fd, 512)?;
    }
    fs.close(fd)?;
    let s = pattern_string(&fs.into_trace(), ByteMode::Preserve);
    let text = s.to_string();
    assert!(text.contains("lseek+write"), "rule 4 captures the seek/write loop: {text}");
    Ok(())
}

#[test]
fn text_roundtrip_preserves_the_pattern_string() -> Result<(), Box<dyn std::error::Error>> {
    let mut fs = SimFs::new();
    let fd = fs.open("f")?;
    fs.write(fd, 10)?;
    fs.fileno(fd)?;
    fs.read(fd, 0)?;
    fs.close(fd)?;
    let trace = fs.into_trace();
    let reparsed = parse_trace(&write_trace(&trace))?;
    assert_eq!(trace, reparsed);
    assert_eq!(
        pattern_string(&trace, ByteMode::Preserve),
        pattern_string(&reparsed, ByteMode::Preserve)
    );
    Ok(())
}

#[test]
fn byte_modes_agree_on_structure_and_mass() -> Result<(), Box<dyn std::error::Error>> {
    let trace =
        parse_trace("h0 open 0\nh0 write 1\nh0 write 2\nh0 write 2\nh1 open 0\nh1 read 9\nh1 close 0\nh0 close 0\n")?;
    let preserve = build_tree(&trace, ByteMode::Preserve);
    let ignore = build_tree(&trace, ByteMode::Ignore);
    assert_eq!(preserve.mass(), ignore.mass());
    assert_eq!(preserve.handles.len(), ignore.handles.len());

    let mut ct = preserve.clone();
    compress_tree(&mut ct, &CompressOptions::default());
    assert_eq!(ct.mass(), preserve.mass(), "compression is mass preserving");
    let s = flatten_tree(&ct);
    assert!(s.total_weight() >= ct.mass(), "structure tokens add weight");
    Ok(())
}

#[test]
fn negligible_operations_never_reach_the_string() -> Result<(), Box<dyn std::error::Error>> {
    let mut fs = SimFs::new();
    let fd = fs.open("f")?;
    fs.fileno(fd)?;
    fs.fscanf(fd, 100)?;
    fs.write(fd, 7)?;
    fs.close(fd)?;
    let s = pattern_string(&fs.into_trace(), ByteMode::Preserve);
    let text = s.to_string();
    assert!(!text.contains("fileno"));
    assert!(!text.contains("fscanf"));
    assert!(text.contains("write[7]"));
    Ok(())
}
