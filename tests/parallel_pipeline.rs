//! Parallel-trace integration: multi-rank runs through the full
//! representation + kernel pipeline.

use kastio::trace::{HandleMerge, ParallelTrace};
use kastio::workloads::generators::{ior_parallel, IorParams};
use kastio::{pattern_string, ByteMode, KastKernel, KastOptions, StringKernel, TokenInterner};

#[test]
fn shared_file_and_file_per_process_produce_different_patterns() {
    let job = ior_parallel(&IorParams::default(), 4);
    let shared = pattern_string(&job.merge(HandleMerge::SharedFile), ByteMode::Preserve);
    let fpp = pattern_string(&job.merge(HandleMerge::FilePerProcess), ByteMode::Preserve);
    assert_ne!(shared, fpp);
    // Shared-file: one HANDLE token; file-per-process: one per rank.
    let handles = |s: &kastio::WeightedString| {
        s.iter().filter(|t| t.literal == kastio::pattern::TokenLiteral::Handle).count()
    };
    assert_eq!(handles(&shared), 1);
    assert_eq!(handles(&fpp), 4);
}

#[test]
fn scale_invariance_within_a_layout() {
    // The same layout at different rank counts must stay more similar
    // than different layouts at the same rank count.
    let mut interner = TokenInterner::new();
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let mut string_of = |ranks: usize, merge: HandleMerge| {
        let trace = ior_parallel(&IorParams::default(), ranks).merge(merge);
        interner.intern_string(&pattern_string(&trace, ByteMode::Preserve))
    };
    let fpp2 = string_of(2, HandleMerge::FilePerProcess);
    let fpp8 = string_of(8, HandleMerge::FilePerProcess);
    let shared2 = string_of(2, HandleMerge::SharedFile);
    assert!(kernel.normalized(&fpp2, &fpp8) > kernel.normalized(&fpp2, &shared2));
}

#[test]
fn merge_preserves_total_operations() {
    let job = ior_parallel(&IorParams::default(), 5);
    for merge in [HandleMerge::FilePerProcess, HandleMerge::SharedFile] {
        assert_eq!(job.merge(merge).len(), job.total_ops());
    }
}

#[test]
fn single_rank_parallel_trace_equals_its_only_rank() {
    let job = ior_parallel(&IorParams::default(), 1);
    let merged = job.merge(HandleMerge::FilePerProcess);
    assert_eq!(&merged, job.rank(0).expect("one rank"));
}

#[test]
fn empty_parallel_trace_flattens_to_root() {
    let empty = ParallelTrace::new(vec![]);
    let s = pattern_string(&empty.merge(HandleMerge::SharedFile), ByteMode::Preserve);
    assert_eq!(s.to_string(), "[ROOT]x1");
}
