//! Crash-tolerant persistence, end to end against the real `kastio serve`
//! binary: signal-triggered snapshots (`SIGTERM`/`SIGINT`), the `SAVE`
//! verb (including via `kastio query --snapshot`), periodic
//! `--snapshot-every` snapshots surviving a `SIGKILL`, save-failure
//! surfacing (wire `ERR`, STATS counters, non-zero exit), and reloads
//! under a different `--shards` count answering queries identically.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use kastio::index::protocol::read_reply;
use kastio::{load_index, IndexOptions};

/// Kills the serve daemon if a test panics before SHUTDOWN. Keeps the
/// stdout pipe open so the daemon's own prints never hit EPIPE.
struct ServerGuard {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn start_server(extra_args: &[&str], capture_stderr: bool) -> ServerGuard {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["serve", "--port", "0"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(if capture_stderr { Stdio::piped() } else { Stdio::null() })
        .spawn()
        .expect("serve starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("serve announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {line:?}"))
        .to_string();
    ServerGuard { child, addr, _stdout: stdout }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> Connection {
        let stream = TcpStream::connect(addr).expect("client connects");
        Connection { reader: BufReader::new(stream.try_clone().expect("clone")), writer: stream }
    }

    /// Sends a request and collects the framed reply; `None` once the
    /// server has gone away mid-exchange.
    fn try_roundtrip(&mut self, request: &str) -> Option<Vec<String>> {
        self.writer.write_all(request.as_bytes()).ok()?;
        self.writer.flush().ok()?;
        let reply = read_reply(&mut self.reader).ok()?;
        Some(reply.lines().map(str::to_string).collect())
    }

    fn roundtrip(&mut self, request: &str) -> Vec<String> {
        self.try_roundtrip(request).expect("server replied")
    }
}

fn stat_value(stats: &[String], key: &str) -> u64 {
    stats
        .iter()
        .find_map(|line| line.strip_prefix(&format!("STAT {key} ")))
        .unwrap_or_else(|| panic!("stats reply has {key}: {stats:?}"))
        .parse()
        .expect("stat value is integral")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kastio-sigsnap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

/// A distinct inline trace per id, so entries are distinguishable.
fn wire_trace(i: usize) -> String {
    format!("h0 write {};h0 write {0};h0 read {}", 64 << (i % 8), 32 + i)
}

#[cfg(unix)]
fn send_signal(child: &Child, signal: &str) {
    let status =
        Command::new("kill").args([signal, &child.id().to_string()]).status().expect("kill runs");
    assert!(status.success(), "kill {signal} delivered");
}

#[cfg(unix)]
#[test]
fn sigterm_mid_traffic_snapshots_every_acknowledged_ingest() {
    let dir = tmpdir("sigterm");
    let save = dir.join("corpus");
    let mut server = start_server(&["--save", save.to_str().unwrap()], false);

    // A writer streams INGESTs; after enough are acknowledged the daemon
    // is SIGTERMed under it. Every *acknowledged* ingest must survive in
    // the snapshot; the writer keeps going until the daemon cuts it off,
    // so the kill genuinely lands mid-traffic.
    let addr = server.addr.clone();
    let (min_acked_tx, min_acked_rx) = std::sync::mpsc::channel::<()>();
    let writer = std::thread::spawn(move || {
        let mut conn = Connection::open(&addr);
        let mut acked = 0usize;
        loop {
            let request = format!("INGEST flash {}\n", wire_trace(acked));
            match conn.try_roundtrip(&request) {
                Some(reply) if reply[0].starts_with("OK id=") => {
                    assert_eq!(
                        reply[0],
                        format!("OK id={acked} name=e{acked} entries={}", acked + 1)
                    );
                    acked += 1;
                    if acked == 12 {
                        min_acked_tx.send(()).expect("signal main thread");
                    }
                }
                _ => return acked, // daemon shut the connection: stop counting
            }
        }
    });
    min_acked_rx.recv_timeout(Duration::from_secs(120)).expect("12 ingests acknowledged");
    send_signal(&server.child, "-TERM");
    let acked = writer.join().expect("writer joins");
    let status = server.child.wait().expect("daemon exits");
    assert!(status.success(), "SIGTERM is a clean, successful exit: {status:?}");

    let restored = load_index(&save, IndexOptions::default()).expect("snapshot loads");
    assert!(
        restored.len() >= acked,
        "snapshot holds every acknowledged ingest ({} < {acked})",
        restored.len()
    );
    let names: Vec<String> = restored.entries().iter().map(|e| e.name.clone()).collect();
    for i in 0..acked {
        assert!(names.contains(&format!("e{i}")), "acknowledged e{i} missing from the snapshot");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `SIGKILL` in the middle of a `BATCH INGEST` burst under `--wal`,
/// with exact acked-vs-lost accounting: the client records which batch
/// replies it actually read, and after reload every entry of every
/// *acked* batch must be present while nothing asserts about the batch
/// in flight (it may have partially committed — it was never acked).
#[cfg(unix)]
#[test]
fn sigkill_mid_batch_ingest_burst_keeps_every_acked_batch() {
    let dir = tmpdir("wal-batch-kill");
    let save = dir.join("corpus");
    let mut server = start_server(
        &["--save", save.to_str().unwrap(), "--wal", "--wal-sync-micros", "500"],
        false,
    );

    const BATCH: usize = 4;
    let addr = server.addr.clone();
    let (min_acked_tx, min_acked_rx) = std::sync::mpsc::channel::<()>();
    let writer = std::thread::spawn(move || {
        let mut conn = Connection::open(&addr);
        let mut acked_batches = 0usize;
        loop {
            let base = acked_batches * BATCH;
            let items: Vec<String> =
                (base..base + BATCH).map(|i| format!("flash {}", wire_trace(i))).collect();
            let request = format!("BATCH INGEST {BATCH}\n{}\n", items.join("\n"));
            match conn.try_roundtrip(&request) {
                Some(reply) if reply[0].starts_with("OK batch=") => {
                    assert_eq!(
                        reply[0],
                        format!("OK batch={BATCH} entries={}", base + BATCH),
                        "batches land in order, so the entry count is exact"
                    );
                    acked_batches += 1;
                    if acked_batches == 6 {
                        min_acked_tx.send(()).expect("signal main thread");
                    }
                }
                _ => return acked_batches, // daemon died under us
            }
        }
    });
    min_acked_rx.recv_timeout(Duration::from_secs(120)).expect("6 batches acknowledged");
    send_signal(&server.child, "-KILL");
    let acked_batches = writer.join().expect("writer joins");
    let _ = server.child.wait();
    assert!(acked_batches >= 6);

    let restored = load_index(&save, IndexOptions::default()).expect("durable root loads");
    let acked_entries = acked_batches * BATCH;
    assert!(
        restored.len() >= acked_entries,
        "every entry of every acked batch survives ({} < {acked_entries})",
        restored.len()
    );
    // The in-flight batch was never acked: anything beyond the acked
    // count is a permitted partial tail, bounded by one batch.
    assert!(
        restored.len() <= acked_entries + BATCH,
        "at most the one unacked batch may appear ({} > {acked_entries} + {BATCH})",
        restored.len()
    );
    let names: Vec<String> = restored.entries().iter().map(|e| e.name.clone()).collect();
    for i in 0..acked_entries {
        assert!(names.contains(&format!("e{i}")), "acked e{i} missing after reload");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[cfg(unix)]
#[test]
fn sigint_without_save_still_shuts_down_cleanly() {
    let mut server = start_server(&[], false);
    let mut conn = Connection::open(&server.addr);
    conn.roundtrip(&format!("INGEST flash {}\n", wire_trace(0)));
    send_signal(&server.child, "-INT");
    let status = server.child.wait().expect("daemon exits");
    assert!(status.success(), "SIGINT without --save exits cleanly: {status:?}");
}

#[cfg(unix)]
#[test]
fn periodic_snapshots_survive_sigkill() {
    let dir = tmpdir("sigkill");
    let save = dir.join("corpus");
    let mut server =
        start_server(&["--save", save.to_str().unwrap(), "--snapshot-every", "1"], false);
    let mut conn = Connection::open(&server.addr);
    for i in 0..4 {
        conn.roundtrip(&format!("INGEST flash {}\n", wire_trace(i)));
    }
    // Wait until a background snapshot has captured all four entries. A
    // load may transiently race the snapshot swap; keep retrying.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(index) = load_index(&save, IndexOptions::default()) {
            if index.len() == 4 {
                break;
            }
        }
        assert!(Instant::now() < deadline, "periodic snapshot never captured the corpus");
        std::thread::sleep(Duration::from_millis(100));
    }
    // SIGKILL: no handler runs, no final save — only the periodic
    // snapshot stands between the daemon and data loss.
    send_signal(&server.child, "-KILL");
    let _ = server.child.wait();
    let restored = load_index(&save, IndexOptions::default()).expect("snapshot loads");
    assert_eq!(restored.len(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn save_verb_and_snapshot_client_reload_reproduces_stats() {
    let dir = tmpdir("save-verb");
    let save = dir.join("corpus");
    let mut server = start_server(&["--save", save.to_str().unwrap(), "--shards", "2"], false);
    let mut conn = Connection::open(&server.addr);
    let items: Vec<String> = (0..5).map(|i| format!("flash {}", wire_trace(i))).collect();
    let reply = conn.roundtrip(&format!("BATCH INGEST 5\n{}\n", items.join("\n")));
    assert_eq!(reply, vec!["OK batch=5 entries=5"]);

    // Snapshot through the CLI client (`kastio query <addr> --snapshot`).
    let out = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["query", &server.addr, "--snapshot"])
        .output()
        .expect("query client runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "OK saved entries=5 generation=5\n",
        "SAVE reports what it wrote"
    );
    let stats = conn.roundtrip("STATS\n");
    assert_eq!(stat_value(&stats, "snapshots"), 1);
    assert_eq!(stat_value(&stats, "last_snapshot_ok"), 1);
    assert_eq!(stat_value(&stats, "last_snapshot_generation"), 5);

    // Reload under a *different* shard count: STATS entry counts match
    // and queries answer identically, MATCH line for MATCH line.
    let mut reloaded = start_server(&["--corpus", save.to_str().unwrap(), "--shards", "3"], false);
    let mut conn2 = Connection::open(&reloaded.addr);
    let stats2 = conn2.roundtrip("STATS\n");
    assert_eq!(stat_value(&stats2, "entries"), 5, "reload reproduces the entry count");
    assert_eq!(stat_value(&stats2, "shards"), 3);
    let shard_sum: u64 = (0..3).map(|i| stat_value(&stats2, &format!("shard{i}_entries"))).sum();
    assert_eq!(shard_sum, 5);
    for probe in 0..3 {
        let request = format!("QUERY k=3 {}\n", wire_trace(probe));
        let a = conn.roundtrip(&request);
        let b = conn2.roundtrip(&request);
        assert_eq!(a, b, "probe {probe}: shard count must not change query results");
    }

    conn.roundtrip("SHUTDOWN\n");
    conn2.roundtrip("SHUTDOWN\n");
    // Wait for both daemons to fully exit before removing the corpus:
    // the --save daemon's exit path touches the snapshot directory.
    server.child.wait().expect("first daemon exits");
    reloaded.child.wait().expect("second daemon exits");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_saves_are_loud_wire_err_stats_counters_nonzero_exit() {
    // /dev/null is a file, so creating the snapshot directory under it
    // fails with a real IO error even when the tests run as root.
    let mut server = start_server(&["--save", "/dev/null/corpus"], true);
    let mut conn = Connection::open(&server.addr);
    conn.roundtrip(&format!("INGEST flash {}\n", wire_trace(0)));

    let reply = conn.roundtrip("SAVE\n");
    assert!(reply[0].starts_with("ERR save failed:"), "{reply:?}");

    let stats = conn.roundtrip("STATS\n");
    assert_eq!(stat_value(&stats, "snapshot_errors"), 1);
    assert_eq!(stat_value(&stats, "last_snapshot_ok"), 0);
    assert_eq!(stat_value(&stats, "snapshots"), 0);

    // The client that requests the shutdown sees the failure too…
    let bye = conn.roundtrip("SHUTDOWN\n");
    assert!(bye[0].starts_with("ERR save failed:"), "{bye:?}");
    assert!(bye[0].contains("shutting down anyway"), "{bye:?}");

    // …and the daemon's exit path makes it unmissable: non-zero exit
    // with the save error on stderr.
    let status = server.child.wait().expect("daemon exits");
    assert!(!status.success(), "a failed final save must not exit 0");
    let mut stderr = String::new();
    use std::io::Read;
    server
        .child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("stderr reads");
    assert!(stderr.contains("failed to save"), "stderr names the save failure:\n{stderr}");
}

#[test]
fn snapshot_client_against_a_saveless_daemon_is_a_clean_error() {
    let server = start_server(&[], false);
    let out = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["query", &server.addr, "--snapshot"])
        .output()
        .expect("query client runs");
    assert!(!out.status.success(), "ERR reply makes the client exit non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("ERR no save directory"), "{stdout}");
    let mut conn = Connection::open(&server.addr);
    conn.roundtrip("SHUTDOWN\n");
}

#[test]
fn snapshot_every_without_save_is_rejected() {
    let out = Command::new(env!("CARGO_BIN_EXE_kastio"))
        .args(["serve", "--port", "0", "--snapshot-every", "5"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--snapshot-every needs --save"), "{stderr}");
}

/// The library-level regression for ingest validation, exercised through
/// the same public API the daemon uses (wire labels are structurally
/// whitespace-free, so the daemon itself can no longer produce an
/// unsaveable corpus — this pins the library hole shut too).
#[test]
fn unpersistable_ingests_are_rejected_up_front() {
    use kastio::{parse_trace, IngestError, PatternIndex};
    let index = PatternIndex::new(IndexOptions::default());
    let trace = parse_trace("h0 write 64\n").unwrap();
    let err = index.ingest("bad name", "flash", trace.clone()).unwrap_err();
    assert!(matches!(err, IngestError::InvalidName(_)), "{err}");
    let err = index.ingest("ok", "two words", trace.clone()).unwrap_err();
    assert!(matches!(err, IngestError::InvalidLabel(_)), "{err}");
    let err = index.ingest("ok", "line\nbreak", trace.clone()).unwrap_err();
    assert!(matches!(err, IngestError::InvalidLabel(_)), "{err}");
    assert_eq!(index.len(), 0, "nothing was ingested");
    assert_eq!(index.generation(), 0, "rejected ingests do not bump the generation");

    // A valid corpus built afterwards still saves fine — one earlier
    // rejection never poisons the save path.
    index.ingest("ok", "flash", trace).unwrap();
    let dir = tmpdir("validate");
    let save = dir.join("corpus");
    kastio::save_index(&index, &save).expect("corpus with only valid entries saves");
    assert_eq!(load_index(&save, IndexOptions::default()).unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Belt-and-braces for the wire: labels reach the daemon through
/// whitespace splitting, so even adversarial byte sequences around the
/// label position either parse into a (valid, whitespace-free) label or
/// fail cleanly — and a subsequent SAVE always succeeds.
#[test]
fn wire_ingests_can_never_poison_the_snapshot() {
    let dir = tmpdir("wire-labels");
    let save = dir.join("corpus");
    let mut server = start_server(&["--save", save.to_str().unwrap()], false);
    let mut conn = Connection::open(&server.addr);
    // Odd-but-legal labels (path-y, dotted, unicode) and malformed lines.
    for request in [
        "INGEST a/b.c h0 write 64\n",
        "INGEST ..dots h0 write 64\n",
        "INGEST héllo-wörld h0 write 64\n",
        "INGEST \u{a0}nbsp-separated h0 write 64\n", // NBSP *is* whitespace: splits there
    ] {
        let reply = conn.roundtrip(request);
        assert!(
            reply[0].starts_with("OK id=") || reply[0].starts_with("ERR"),
            "{request:?} → {reply:?}"
        );
    }
    let reply = conn.roundtrip("SAVE\n");
    assert!(reply[0].starts_with("OK saved entries="), "every accepted label saves: {reply:?}");
    let restored = load_index(&save, IndexOptions::default()).expect("snapshot loads");
    let stats = conn.roundtrip("STATS\n");
    assert_eq!(restored.len() as u64, stat_value(&stats, "entries"), "lossless round trip");
    conn.roundtrip("SHUTDOWN\n");
    server.child.wait().expect("daemon exits before the corpus is removed");
    std::fs::remove_dir_all(&dir).unwrap();
}
