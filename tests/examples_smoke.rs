//! Smoke coverage for `examples/`.
//!
//! Every example is compiled as part of `cargo test` (cargo builds all
//! example targets for the package under test), and this test drives the
//! `quickstart` example end-to-end through cargo to assert it also *runs*
//! to completion.

use std::path::Path;
use std::process::Command;

/// Examples this crate ships. Kept explicit so that adding an example
/// without smoke coverage fails the test below.
const EXAMPLES: &[&str] = &[
    "ast_compare",
    "cluster_dataset",
    "cut_weight_sweep",
    "explain_similarity",
    "index_knn",
    "parallel_io",
    "quickstart",
    "serve_query",
    "trace_inspect",
];

#[test]
fn example_list_is_complete() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/ directory exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "rs"))
        .map(|path| path.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    found.sort();
    assert_eq!(found, EXAMPLES, "examples/ and EXAMPLES disagree; update the list");
}

#[test]
fn quickstart_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", "quickstart"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("cargo is runnable from a test");
    assert!(
        output.status.success(),
        "quickstart example failed with {}\nstdout:\n{}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!stdout.trim().is_empty(), "quickstart prints its similarity report");
}
