//! The paper's headline clustering results (§4.2), asserted end to end on
//! the full 110-example dataset through the public facade API.
//!
//! These are the machine-checkable versions of Figures 6/7 and the
//! no-byte-information prose result.

use kastio::{
    adjusted_rand_index, gram_matrix, hierarchical, pattern_string, psd_repair, purity, ByteMode,
    Dataset, DistanceMatrix, GramMode, IdString, KastKernel, KastOptions, Linkage, SquareMatrix,
    StringKernel, TokenInterner,
};

const SEED: u64 = 20170904;

fn prepared(mode: ByteMode) -> (Dataset, Vec<IdString>) {
    let ds = Dataset::paper(SEED);
    let mut interner = TokenInterner::new();
    let strings =
        ds.iter().map(|e| interner.intern_string(&pattern_string(&e.trace, mode))).collect();
    (ds, strings)
}

fn cluster_labels<K: StringKernel + Sync>(
    kernel: &K,
    strings: &[IdString],
    k: usize,
) -> Vec<usize> {
    let gram = gram_matrix(kernel, strings, GramMode::Normalized, 0);
    let square = SquareMatrix::from_row_major(gram.n(), gram.as_slice().to_vec());
    let repaired = psd_repair(&square).expect("gram is symmetric").matrix;
    let distance = DistanceMatrix::from_gram(repaired.n(), repaired.as_slice());
    hierarchical(&distance, Linkage::Single).cut(k)
}

#[test]
fn figure7_three_groups_with_byte_information() {
    let (ds, strings) = prepared(ByteMode::Preserve);
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let labels = cluster_labels(&kernel, &strings, 3);
    // {A}, {B}, {C∪D} with no misplaced examples.
    let expected: Vec<usize> = ds.labels().iter().map(|&l| if l >= 2 { 2 } else { l }).collect();
    assert_eq!(purity(&labels, &expected), 1.0);
    assert!((adjusted_rand_index(&labels, &expected) - 1.0).abs() < 1e-12);
}

#[test]
fn dataset_matches_the_papers_shape() {
    let ds = Dataset::paper(SEED);
    assert_eq!(ds.len(), 110);
    assert_eq!(ds.counts(), [50, 20, 20, 20]);
}

#[test]
fn no_byte_information_only_separates_random_posix_at_small_cut() {
    let (ds, strings) = prepared(ByteMode::Ignore);
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let labels = cluster_labels(&kernel, &strings, 2);
    // {B} vs {A∪C∪D}.
    let expected: Vec<usize> = ds.labels().iter().map(|&l| usize::from(l == 1)).collect();
    assert!((adjusted_rand_index(&labels, &expected) - 1.0).abs() < 1e-12);
    // And the 3-cut does NOT recover the byte-information grouping.
    let labels3 = cluster_labels(&kernel, &strings, 3);
    let expected3: Vec<usize> = ds.labels().iter().map(|&l| if l >= 2 { 2 } else { l }).collect();
    assert!(adjusted_rand_index(&labels3, &expected3) < 0.9);
}

#[test]
fn raising_the_cut_weight_recovers_three_groups_without_bytes() {
    let (ds, strings) = prepared(ByteMode::Ignore);
    let kernel = KastKernel::new(KastOptions::with_cut_weight(32));
    let labels = cluster_labels(&kernel, &strings, 3);
    let expected: Vec<usize> = ds.labels().iter().map(|&l| if l >= 2 { 2 } else { l }).collect();
    assert!((adjusted_rand_index(&labels, &expected) - 1.0).abs() < 1e-12);
}

#[test]
fn kernel_matrix_is_symmetric_with_unit_diagonal() {
    let (_, strings) = prepared(ByteMode::Preserve);
    let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
    let gram = gram_matrix(&kernel, &strings, GramMode::Normalized, 0);
    assert!(gram.is_symmetric(0.0));
    for i in 0..gram.n() {
        assert!((gram.get(i, i) - 1.0).abs() < 1e-9, "diag[{i}] = {}", gram.get(i, i));
    }
}
