//! The loadgen reproducibility contract: the request stream is a pure
//! function of `(scenario, seed, client id)`. Same `--seed`, same
//! requests — byte for byte — both through the library and through the
//! `kastio loadgen --dry-run` subcommand.

use std::process::Command;

use kastio::loadgen::{dry_run_trace, ScenarioKind};

#[test]
fn same_seed_renders_identical_traces_for_every_scenario() {
    for kind in ScenarioKind::ALL {
        let a = dry_run_trace(kind, 20170904, 4, 25);
        let b = dry_run_trace(kind, 20170904, 4, 25);
        assert_eq!(a, b, "{} is not deterministic in the seed", kind.name());
    }
}

#[test]
fn different_seeds_and_scenarios_render_different_traces() {
    for kind in ScenarioKind::ALL {
        let a = dry_run_trace(kind, 1, 2, 25);
        let b = dry_run_trace(kind, 2, 2, 25);
        assert_ne!(a, b, "{} ignores the seed", kind.name());
    }
    assert_ne!(
        dry_run_trace(ScenarioKind::ReadHeavy, 7, 2, 25).lines().skip(1).collect::<Vec<_>>(),
        dry_run_trace(ScenarioKind::WriteHeavy, 7, 2, 25).lines().skip(1).collect::<Vec<_>>(),
        "scenario mixes are distinguishable"
    );
}

#[test]
fn a_longer_run_consumes_a_prefix_of_the_same_stream() {
    // Duration only decides how much of the stream is consumed: the
    // first N ops of a longer trace are exactly the shorter trace.
    for kind in ScenarioKind::ALL {
        let short = dry_run_trace(kind, 42, 1, 10);
        let long = dry_run_trace(kind, 42, 1, 40);
        let short_body = short.lines().skip(2).collect::<Vec<_>>().join("\n");
        let long_body = long.lines().skip(2).collect::<Vec<_>>().join("\n");
        assert!(
            long_body.starts_with(&short_body),
            "{}: 10-op trace is not a prefix of the 40-op trace",
            kind.name()
        );
    }
}

#[test]
fn dry_run_subcommand_is_reproducible_end_to_end() {
    let run = |seed: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_kastio"))
            .args(["loadgen", "--dry-run", "--seed", seed, "--clients", "3", "--ops", "15"])
            .output()
            .expect("loadgen --dry-run runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).expect("utf8 trace")
    };
    let first = run("99");
    let second = run("99");
    assert_eq!(first, second, "identical CLI invocations must print identical traces");
    assert_ne!(first, run("100"), "the CLI seed flag must reach the generators");

    // The trace covers every scenario and every client.
    for header in [
        "# scenario=read-heavy",
        "# scenario=write-heavy",
        "# scenario=hot-key",
        "# scenario=save-storm",
    ] {
        assert!(first.contains(header), "missing {header}");
    }
    for client in ["--- client 0 ---", "--- client 1 ---", "--- client 2 ---"] {
        assert_eq!(first.matches(client).count(), 4, "{client} appears once per scenario");
    }
}
