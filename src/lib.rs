//! # kastio
//!
//! A from-scratch Rust reproduction of Torres, Kunkel, Dolz, Ludwig —
//! *"A Novel String Representation and Kernel Function for the Comparison
//! of I/O Access Patterns"* (PaCT 2017, LNCS 10421,
//! DOI 10.1007/978-3-319-62932-2_48).
//!
//! The paper converts POSIX-level I/O traces into *weighted token strings*
//! via a containment tree (`ROOT → HANDLE → BLOCK → operations`) with a
//! four-rule compression step, then compares those strings with a new
//! string kernel — the **Kast Spectrum Kernel** — whose features are the
//! independent shared substrings reaching a *cut weight*. Similarity
//! matrices over a 110-example dataset (IOR + FLASH-IO access patterns)
//! are analysed with Kernel PCA and single-linkage hierarchical
//! clustering.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`trace`] | `kastio-trace` | trace model, text format, simulated POSIX layer |
//! | [`pattern`] | `kastio-core` | tree construction, compression, weighted strings, **Kast kernel** |
//! | [`kernels`] | `kastio-kernels` | spectrum/blended/bag baselines, Gram matrices |
//! | [`linalg`] | `kastio-linalg` | Jacobi eigensolver, PSD repair, Kernel PCA |
//! | [`cluster`] | `kastio-cluster` | hierarchical clustering, dendrograms, metrics |
//! | [`workloads`] | `kastio-workloads` | IOR/FLASH-IO-style generators, the 110-example dataset |
//! | [`obs`] | `kastio-obs` | observability primitives: log-bucketed latency histograms, striped concurrent recording, slow-query log, metrics exposition |
//! | [`index`] | `kastio-index` | sharded, read-concurrent corpus index: k-NN queries, signature prefilter, per-shard LRU kernel caches, serve/query daemon |
//! | [`loadgen`] | `kastio-loadgen` | end-to-end load harness: seeded scenario mixes, concurrent client pool, latency histograms, METRICS scrapes, STATS-delta reports, bench-diff |
//!
//! The most common items are re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use kastio::{pattern_string, ByteMode, KastKernel, KastOptions, SimFs, StringKernel,
//!              TokenInterner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Record two tiny applications on the simulated POSIX layer.
//! let mut fs = SimFs::new();
//! let fd = fs.open("checkpoint.dat")?;
//! for _ in 0..32 {
//!     fs.write(fd, 1 << 20)?;
//! }
//! fs.close(fd)?;
//! let trace_a = fs.into_trace();
//!
//! let mut fs = SimFs::new();
//! let fd = fs.open("checkpoint.dat")?;
//! for _ in 0..40 {
//!     fs.write(fd, 1 << 20)?;
//! }
//! fs.close(fd)?;
//! let trace_b = fs.into_trace();
//!
//! // Convert to weighted strings and compare with the Kast kernel.
//! let mut interner = TokenInterner::new();
//! let a = interner.intern_string(&pattern_string(&trace_a, ByteMode::Preserve));
//! let b = interner.intern_string(&pattern_string(&trace_b, ByteMode::Preserve));
//! let kernel = KastKernel::new(KastOptions::with_cut_weight(2));
//! let similarity = kernel.normalized(&a, &b);
//! assert!(similarity > 0.9, "same pattern, different loop count");
//! # Ok(())
//! # }
//! ```

pub use kastio_cluster as cluster;
pub use kastio_core as pattern;
pub use kastio_index as index;
pub use kastio_kernels as kernels;
pub use kastio_linalg as linalg;
pub use kastio_loadgen as loadgen;
pub use kastio_obs as obs;
pub use kastio_trace as trace;
pub use kastio_workloads as workloads;

pub use kastio_cluster::{
    adjusted_rand_index, hierarchical, purity, silhouette, Dendrogram, DistanceMatrix, Linkage,
};
pub use kastio_core::{
    build_tree, compress_tree, flatten_tree, pattern_string, ByteMode, CompressOptions, CutRule,
    IdString, KastKernel, KastOptions, Normalization, PatternPipeline, PatternTree, StringKernel,
    TokenInterner, WeightedString,
};
pub use kastio_index::{
    load_index, save_index, save_index_if_changed, save_index_if_changed_wal, save_index_wal,
    watch_termination, IndexOptions, IndexStats, IngestError, Neighbor, PatternIndex,
    PrefilterConfig, QueryResult, Runtime, RuntimeKind, Server, ShutdownHandle, SignalWatcher,
    SnapshotInfo, SnapshotStatus, Snapshotter, TermSignal, WalManager,
};
pub use kastio_kernels::{
    gram_matrix, BagOfTokensKernel, BagOfWordsKernel, BlendedSpectrumKernel, GramMode,
    KSpectrumKernel, KernelMatrix, WeightingMode,
};
pub use kastio_linalg::{center_gram, eigh, psd_repair, KernelPca, SquareMatrix};
pub use kastio_trace::{parse_trace, write_trace, OpKind, Operation, SimFs, Trace};
pub use kastio_workloads::{Category, Dataset, DatasetShape, MutationConfig};
