//! `kastio` — command-line front end for the trace → string → kernel →
//! clustering pipeline.
//!
//! ```text
//! kastio convert  <trace-file> [--ignore-bytes]
//! kastio compare  <a.trace> <b.trace> [--cut N] [--ignore-bytes] [--explain]
//! kastio generate <dir> [--seed N]
//! kastio cluster  <dir> [--cut N] [--ignore-bytes] [--groups K]
//! ```
//!
//! `generate` writes the paper's 110-example dataset as plain trace files
//! (plus a MANIFEST); `cluster` reads any directory in that layout,
//! builds the Kast similarity matrix, repairs it and prints the flat
//! clustering with purity/ARI against the manifest categories.

use std::path::Path;
use std::process::ExitCode;

use kastio::pattern::explain::explain_similarity;
use kastio::workloads::{export_dataset, import_dataset};
use kastio::{
    adjusted_rand_index, gram_matrix, hierarchical, parse_trace, pattern_string, psd_repair,
    purity, ByteMode, Dataset, DistanceMatrix, GramMode, KastKernel, KastOptions, Linkage,
    SquareMatrix, StringKernel, TokenInterner,
};

const USAGE: &str = "\
usage:
  kastio convert  <trace-file> [--ignore-bytes]
  kastio compare  <a.trace> <b.trace> [--cut N] [--ignore-bytes] [--explain]
  kastio generate <dir> [--seed N]
  kastio cluster  <dir> [--cut N] [--ignore-bytes] [--groups K]
";

struct Flags {
    positional: Vec<String>,
    cut: u64,
    seed: u64,
    groups: usize,
    ignore_bytes: bool,
    explain: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        cut: 2,
        seed: 20170904,
        groups: 3,
        ignore_bytes: false,
        explain: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ignore-bytes" => flags.ignore_bytes = true,
            "--explain" => flags.explain = true,
            "--cut" | "--seed" | "--groups" => {
                let value = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                let parsed: u64 =
                    value.parse().map_err(|_| format!("{arg} needs an integer, got `{value}`"))?;
                match arg.as_str() {
                    "--cut" => flags.cut = parsed.max(1),
                    "--seed" => flags.seed = parsed,
                    _ => flags.groups = (parsed as usize).max(1),
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

fn byte_mode(flags: &Flags) -> ByteMode {
    if flags.ignore_bytes {
        ByteMode::Ignore
    } else {
        ByteMode::Preserve
    }
}

fn load_trace(path: &str) -> Result<kastio::Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_trace(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_convert(flags: &Flags) -> Result<(), String> {
    let [path] = flags.positional.as_slice() else {
        return Err("convert needs exactly one trace file".to_string());
    };
    let trace = load_trace(path)?;
    let s = pattern_string(&trace, byte_mode(flags));
    println!("{s}");
    Ok(())
}

fn cmd_compare(flags: &Flags) -> Result<(), String> {
    let [pa, pb] = flags.positional.as_slice() else {
        return Err("compare needs exactly two trace files".to_string());
    };
    let (ta, tb) = (load_trace(pa)?, load_trace(pb)?);
    let mode = byte_mode(flags);
    let mut interner = TokenInterner::new();
    let a = interner.intern_string(&pattern_string(&ta, mode));
    let b = interner.intern_string(&pattern_string(&tb, mode));
    let kernel = KastKernel::new(KastOptions::with_cut_weight(flags.cut));
    if flags.explain {
        print!("{}", explain_similarity(&kernel, &a, &b, &interner));
    } else {
        println!("raw        {}", kernel.raw(&a, &b));
        println!("normalised {:.6}", kernel.normalized(&a, &b));
    }
    Ok(())
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let [dir] = flags.positional.as_slice() else {
        return Err("generate needs exactly one output directory".to_string());
    };
    let dataset = Dataset::paper(flags.seed);
    export_dataset(&dataset, Path::new(dir)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} traces (A/B/C/D = {:?}) and MANIFEST to {dir}",
        dataset.len(),
        dataset.counts()
    );
    Ok(())
}

fn cmd_cluster(flags: &Flags) -> Result<(), String> {
    let [dir] = flags.positional.as_slice() else {
        return Err("cluster needs exactly one dataset directory".to_string());
    };
    let dataset = import_dataset(Path::new(dir)).map_err(|e| e.to_string())?;
    let mode = byte_mode(flags);
    let mut interner = TokenInterner::new();
    let strings: Vec<_> =
        dataset.iter().map(|e| interner.intern_string(&pattern_string(&e.trace, mode))).collect();
    let kernel = KastKernel::new(KastOptions::with_cut_weight(flags.cut));
    let gram = gram_matrix(&kernel, &strings, GramMode::Normalized, 0);
    let square = SquareMatrix::from_row_major(gram.n(), gram.as_slice().to_vec());
    let repair = psd_repair(&square).map_err(|e| e.to_string())?;
    let distance = DistanceMatrix::from_gram(repair.matrix.n(), repair.matrix.as_slice());
    let labels = hierarchical(&distance, Linkage::Single).cut(flags.groups.min(dataset.len()));

    println!(
        "{} examples, cut weight {}, {:?}, {} clusters, {} eigenvalues clamped",
        dataset.len(),
        flags.cut,
        mode,
        flags.groups,
        repair.clamped
    );
    for cluster in 0..flags.groups {
        let members: Vec<&str> = dataset
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l == cluster)
            .map(|(e, _)| e.name.as_str())
            .collect();
        if !members.is_empty() {
            println!("cluster {cluster} ({} members): {}", members.len(), members.join(" "));
        }
    }
    let truth = dataset.labels();
    println!("purity vs categories: {:.3}", purity(&labels, &truth));
    println!("ARI vs categories   : {:.3}", adjusted_rand_index(&labels, &truth));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "convert" => cmd_convert(&flags),
        "compare" => cmd_compare(&flags),
        "generate" => cmd_generate(&flags),
        "cluster" => cmd_cluster(&flags),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
