//! `kastio` — command-line front end for the trace → string → kernel →
//! clustering pipeline, plus the online index daemon.
//!
//! ```text
//! kastio convert  <trace-file> [--ignore-bytes]
//! kastio compare  <a.trace> <b.trace> [--cut N] [--ignore-bytes] [--explain]
//! kastio generate <dir> [--seed N]
//! kastio cluster  <dir> [--cut N] [--ignore-bytes] [--groups K]
//! kastio serve    [--port N] [--shards N] [--corpus <dir>] [--save <dir>]
//!                 [--wal] [--wal-sync-micros N] [--snapshot-every <secs>]
//!                 [--cut N] [--ignore-bytes] [--candidates N]
//!                 [--slow-query-micros N] [--max-memory-bytes N]
//!                 [--max-connections N] [--idle-timeout-secs N]
//!                 [--runtime threads|epoll]
//! kastio query    <addr> <trace-file> [--k N]
//! kastio query    <addr> --stats
//! kastio query    <addr> --snapshot
//! kastio loadgen  [--scenario NAME] [--clients N] [--duration 2s]
//!                 [--seed N] [--addr HOST:PORT] [--out FILE]
//!                 [--shards N] [--dry-run] [--ops N]
//!                 [--max-memory-bytes N]
//! kastio bench-diff <new.json> <baseline.json> [--band PCT]
//! kastio help     [command]
//! kastio --version
//! ```
//!
//! `generate` writes the paper's 110-example dataset as plain trace files
//! (plus a MANIFEST); `cluster` reads any directory in that layout,
//! builds the Kast similarity matrix, repairs it and prints the flat
//! clustering with purity/ARI against the manifest categories. `serve`
//! keeps a corpus in memory behind a TCP line protocol and `query` is its
//! client — see the `kastio_index` crate. `loadgen` drives seeded,
//! reproducible request mixes against the daemon (self-spawned unless
//! `--addr` points at one) and writes per-verb throughput/latency —
//! client-side and, via `METRICS` scrapes, server-side — plus STATS
//! deltas to `BENCH_serve.json`; `bench-diff` compares two such
//! artifacts and fails beyond a noise band — see `kastio_loadgen`.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use kastio::index::protocol::{encode_trace_inline, read_reply, PROTOCOL_VERSION};
use kastio::loadgen::{dry_run_trace, LoadConfig, ScenarioKind};
use kastio::pattern::explain::explain_similarity;
use kastio::workloads::{export_dataset, import_dataset};
use kastio::{
    adjusted_rand_index, gram_matrix, hierarchical, load_index, parse_trace, pattern_string,
    psd_repair, purity, watch_termination, ByteMode, Dataset, DistanceMatrix, GramMode,
    IndexOptions, KastKernel, KastOptions, Linkage, PatternIndex, PrefilterConfig, Server,
    Snapshotter, SquareMatrix, StringKernel, TokenInterner,
};

const USAGE: &str = "\
usage:
  kastio convert  <trace-file> [--ignore-bytes]
  kastio compare  <a.trace> <b.trace> [--cut N] [--ignore-bytes] [--explain]
  kastio generate <dir> [--seed N]
  kastio cluster  <dir> [--cut N] [--ignore-bytes] [--groups K]
  kastio serve    [--port N] [--shards N] [--corpus <dir>] [--save <dir>]
                  [--wal] [--wal-sync-micros N] [--snapshot-every <secs>]
                  [--cut N] [--ignore-bytes] [--candidates N]
                  [--slow-query-micros N] [--max-memory-bytes N]
                  [--max-connections N] [--idle-timeout-secs N]
                  [--runtime threads|epoll]
  kastio query    <addr> <trace-file> [--k N]
  kastio query    <addr> --stats
  kastio query    <addr> --snapshot
  kastio loadgen  [--scenario NAME] [--clients N] [--duration 2s]
                  [--seed N] [--addr HOST:PORT] [--out FILE]
                  [--shards N] [--dry-run] [--ops N]
                  [--max-memory-bytes N]
  kastio bench-diff <new.json> <baseline.json> [--band PCT]
  kastio help     [command]
  kastio --version
";

/// Per-command help texts for `kastio help <command>`.
const HELP_TOPICS: &[(&str, &str)] = &[
    (
        "convert",
        "kastio convert <trace-file> [--ignore-bytes]\n\n\
         Converts one plain-text trace to its weighted pattern string and\n\
         prints it. --ignore-bytes zeroes byte values before tokenisation\n\
         (the paper's no-byte-information variant).\n",
    ),
    (
        "compare",
        "kastio compare <a.trace> <b.trace> [--cut N] [--ignore-bytes] [--explain]\n\n\
         Compares two traces with the Kast Spectrum Kernel at cut weight N\n\
         (default 2) and prints the raw and normalised similarity. Both\n\
         traces are interned by a single shared TokenInterner, so the token\n\
         ids in --explain output are directly comparable across the pair.\n",
    ),
    (
        "generate",
        "kastio generate <dir> [--seed N]\n\n\
         Writes the paper's 110-example IOR/FLASH-IO dataset (deterministic\n\
         in the seed) into <dir> as <name>.trace files plus a MANIFEST.\n",
    ),
    (
        "cluster",
        "kastio cluster <dir> [--cut N] [--ignore-bytes] [--groups K]\n\n\
         Loads a dataset directory, builds the normalised Kast similarity\n\
         matrix, repairs it to PSD, runs single-linkage clustering and\n\
         prints the K-group cut with purity/ARI against the manifest.\n",
    ),
    (
        "serve",
        "kastio serve [--port N] [--shards N] [--corpus <dir>] [--save <dir>]\n\
         \u{20}            [--wal] [--wal-sync-micros N] [--snapshot-every <secs>]\n\
         \u{20}            [--cut N] [--ignore-bytes] [--candidates N]\n\
         \u{20}            [--slow-query-micros N] [--max-memory-bytes N]\n\
         \u{20}            [--max-connections N] [--idle-timeout-secs N]\n\
         \u{20}            [--runtime threads|epoll]\n\n\
         Starts the online index daemon on 127.0.0.1:<port> (default 7878;\n\
         0 picks an ephemeral port). Prints `listening on <addr>` once\n\
         bound. --shards splits the corpus across N read-concurrent\n\
         shards (default 4): queries take shard read locks and run in\n\
         parallel, ingests write-lock only the owning shard. --corpus\n\
         preloads a dataset/index directory; --save makes the daemon\n\
         durable: the corpus is snapshotted atomically to that directory\n\
         on SHUTDOWN, on SAVE requests, on SIGTERM/SIGINT, and (with\n\
         --snapshot-every N) every N seconds in the background while\n\
         queries keep flowing (idle cycles are skipped). A failed final\n\
         save exits non-zero. --wal (requires --save) adds a per-shard\n\
         write-ahead log under <save-dir>/wal: every INGEST/BATCH INGEST\n\
         is fsync'd (group commit every --wal-sync-micros microseconds,\n\
         default 2000) before its OK reply, so an acked ingest survives\n\
         kill -9; snapshots compact the log and restarts recover as\n\
         last snapshot + WAL replay (point --corpus at the save dir). --candidates floors the signature-prefilter\n\
         budget. --slow-query-micros enables the slow-query log: requests\n\
         slower than N microseconds end-to-end are kept in a bounded\n\
         in-memory ring (newest 128) readable over SLOWLOG. The daemon\n\
         always records per-verb and per-stage latency histograms,\n\
         exposed by METRICS (Prometheus text format) and summarised as\n\
         p50/p95/p99 in STATS. --max-memory-bytes puts the corpus,\n\
         kernel cache and in-flight request buffers under one byte\n\
         budget: the cache is reclaimed under pressure and ingests that\n\
         would exceed the budget are shed with `ERR busy reason=memory`\n\
         (the connection stays open; reads keep working). Default:\n\
         unlimited. --max-connections (default 1024) sheds connections\n\
         beyond the cap with `ERR busy reason=connections` before a\n\
         handler thread is spawned. --idle-timeout-secs closes\n\
         connections silent for N seconds (default: never). Every shed,\n\
         reclaim and timeout is counted in STATS and METRICS.\n\
         --runtime selects the serving strategy: `threads` (default,\n\
         one blocking OS thread per connection) or `epoll` (Linux only,\n\
         a single-threaded reactor over non-blocking sockets with a\n\
         bounded worker pool — holds tens of thousands of idle\n\
         connections); the wire protocol is byte-identical under both.\n\
         The protocol is line based (full spec in docs/PROTOCOL.md):\n\n\
         \u{20} HELLO <proto-version> [client]\n\
         \u{20} INGEST <label> <op>;<op>;...\n\
         \u{20} BATCH INGEST <count>   (then <count> `<label> <trace>` lines)\n\
         \u{20} QUERY k=<k> [trace=1] <op>;<op>;...\n\
         \u{20} MQUERY k=<k> [trace=1] <count>   (then <count> trace lines)\n\
         \u{20} STATS\n\
         \u{20} METRICS\n\
         \u{20} SLOWLOG GET|RESET|LEN\n\
         \u{20} SAVE\n\
         \u{20} SHUTDOWN\n",
    ),
    (
        "query",
        "kastio query <addr> <trace-file> [--k N]\n\
         kastio query <addr> --stats\n\
         kastio query <addr> --snapshot\n\n\
         Client for `kastio serve`. Sends the trace file as a k-NN QUERY\n\
         (default k=5) — or, with --stats, asks for the server's counters;\n\
         with --snapshot, asks the server to SAVE its corpus now — and\n\
         prints the server's reply. Opens with a HELLO handshake; servers\n\
         predating HELLO answer `ERR unknown verb`, which is tolerated\n\
         (the request still runs), but a version mismatch is fatal.\n",
    ),
    (
        "loadgen",
        "kastio loadgen [--scenario NAME] [--clients N] [--duration 2s]\n\
         \u{20}              [--seed N] [--addr HOST:PORT] [--out FILE]\n\
         \u{20}              [--shards N] [--dry-run] [--ops N]\n\
         \u{20}              [--max-memory-bytes N]\n\n\
         End-to-end load harness for the daemon. Runs the named scenario\n\
         (read-heavy | write-heavy | hot-key | save-storm; default: all\n\
         four in that order) with N concurrent clients. Three scenarios\n\
         are opt-in: `overload` pairs an aggressive BATCH INGEST /\n\
         MQUERY mix with a small --max-memory-bytes budget on the\n\
         self-spawned server and verifies the daemon sheds with\n\
         `ERR busy` instead of growing; `snapshot-stall` mixes ~10%\n\
         SAVE into hot QUERY traffic and reports what snapshots cost\n\
         (per-verb SAVE histogram) and whether they stall readers;\n\
         `churn` opens a fresh connection per operation\n\
         (connect, HELLO, one QUERY, close), timing the accept path.\n\
         Clients default to 4, running for the\n\
         duration each (default 2s; accepts `500ms`, `2s` or plain\n\
         seconds), then writes per-verb throughput, p50/p95/p99 latency\n\
         (client-side and, scraped from METRICS fences around each\n\
         scenario, server-side) and the server-side STATS delta to --out\n\
         (default BENCH_serve.json). Without --addr a server is spawned in-process\n\
         on an ephemeral port (--shards controls its sharding) and shut\n\
         down afterwards; with --addr the target daemon is left running.\n\
         The request streams are a pure function of --seed and the client\n\
         id — identical runs send identical requests. --dry-run prints\n\
         the first --ops operations (default 20) of every client's stream\n\
         instead of touching the network.\n",
    ),
    (
        "bench-diff",
        "kastio bench-diff <new.json> <baseline.json> [--band PCT]\n\n\
         Compares two `kastio loadgen` artifacts. For every (scenario,\n\
         verb) pair present in both, throughput must not drop — and\n\
         client-observed p99 latency must not grow — by more than the\n\
         noise band (default 25%, i.e. --band 25). Prints one line per\n\
         compared metric and exits non-zero when anything regressed\n\
         beyond the band, so CI can gate on it. Pairs present in only\n\
         one artifact are ignored; artifacts with no overlap at all are\n\
         an error.\n",
    ),
];

struct Flags {
    positional: Vec<String>,
    cut: u64,
    seed: u64,
    groups: usize,
    k: usize,
    port: u16,
    shards: usize,
    candidates: usize,
    snapshot_every: u64,
    wal_sync_micros: u64,
    clients: usize,
    ops: usize,
    band: u64,
    slow_query_micros: Option<u64>,
    max_memory_bytes: Option<u64>,
    max_connections: Option<usize>,
    idle_timeout_secs: Option<u64>,
    duration: Duration,
    runtime: Option<String>,
    scenario: Option<String>,
    addr: Option<String>,
    out: Option<String>,
    corpus: Option<String>,
    save: Option<String>,
    wal: bool,
    ignore_bytes: bool,
    explain: bool,
    stats: bool,
    snapshot: bool,
    dry_run: bool,
}

/// Parses `2s`, `500ms` or a plain number of seconds.
fn parse_duration(value: &str) -> Result<Duration, String> {
    let (digits, unit): (&str, fn(u64) -> Duration) = match value {
        v if v.ends_with("ms") => (&v[..v.len() - 2], Duration::from_millis),
        v if v.ends_with('s') => (&v[..v.len() - 1], Duration::from_secs),
        v => (v, Duration::from_secs),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration `{value}` (expected e.g. `2s`, `500ms`)"))?;
    if n == 0 {
        return Err(format!("duration `{value}` must be positive"));
    }
    Ok(unit(n))
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        cut: 2,
        seed: 20170904,
        groups: 3,
        k: 5,
        port: 7878,
        shards: 4,
        candidates: PrefilterConfig::default().min_candidates,
        snapshot_every: 0,
        wal_sync_micros: 2000,
        clients: 4,
        ops: 20,
        band: 25,
        slow_query_micros: None,
        max_memory_bytes: None,
        max_connections: None,
        idle_timeout_secs: None,
        duration: Duration::from_secs(2),
        runtime: None,
        scenario: None,
        addr: None,
        out: None,
        corpus: None,
        save: None,
        wal: false,
        ignore_bytes: false,
        explain: false,
        stats: false,
        snapshot: false,
        dry_run: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ignore-bytes" => flags.ignore_bytes = true,
            "--wal" => flags.wal = true,
            "--explain" => flags.explain = true,
            "--stats" => flags.stats = true,
            "--snapshot" => flags.snapshot = true,
            "--dry-run" => flags.dry_run = true,
            "--duration" => {
                let value = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                flags.duration = parse_duration(value)?;
            }
            "--corpus" | "--save" | "--runtime" | "--scenario" | "--addr" | "--out" => {
                let value = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                match arg.as_str() {
                    "--corpus" => flags.corpus = Some(value.clone()),
                    "--runtime" => flags.runtime = Some(value.clone()),
                    "--scenario" => flags.scenario = Some(value.clone()),
                    "--addr" => flags.addr = Some(value.clone()),
                    "--out" => flags.out = Some(value.clone()),
                    _ => flags.save = Some(value.clone()),
                }
            }
            "--cut"
            | "--seed"
            | "--groups"
            | "--k"
            | "--port"
            | "--shards"
            | "--candidates"
            | "--snapshot-every"
            | "--wal-sync-micros"
            | "--clients"
            | "--ops"
            | "--band"
            | "--slow-query-micros"
            | "--max-memory-bytes"
            | "--max-connections"
            | "--idle-timeout-secs" => {
                let value = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                let parsed: u64 =
                    value.parse().map_err(|_| format!("{arg} needs an integer, got `{value}`"))?;
                match arg.as_str() {
                    "--cut" => flags.cut = parsed.max(1),
                    "--seed" => flags.seed = parsed,
                    "--groups" => flags.groups = (parsed as usize).max(1),
                    "--k" => flags.k = (parsed as usize).max(1),
                    "--shards" => flags.shards = (parsed as usize).max(1),
                    "--candidates" => flags.candidates = (parsed as usize).max(1),
                    "--snapshot-every" => flags.snapshot_every = parsed,
                    "--wal-sync-micros" => flags.wal_sync_micros = parsed.max(1),
                    "--clients" => flags.clients = (parsed as usize).max(1),
                    "--ops" => flags.ops = (parsed as usize).max(1),
                    "--band" => flags.band = parsed,
                    // 0 is meaningful: log every request.
                    "--slow-query-micros" => flags.slow_query_micros = Some(parsed),
                    "--max-memory-bytes" => flags.max_memory_bytes = Some(parsed.max(1)),
                    "--max-connections" => flags.max_connections = Some((parsed as usize).max(1)),
                    // 0 would time every read out instantly; treat it
                    // as "disabled", same as not passing the flag.
                    "--idle-timeout-secs" => {
                        flags.idle_timeout_secs = (parsed > 0).then_some(parsed)
                    }
                    _ => {
                        flags.port = u16::try_from(parsed).map_err(|_| {
                            format!("--port needs a value in 0..=65535, got `{value}`")
                        })?
                    }
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

fn byte_mode(flags: &Flags) -> ByteMode {
    if flags.ignore_bytes {
        ByteMode::Ignore
    } else {
        ByteMode::Preserve
    }
}

fn load_trace(path: &str) -> Result<kastio::Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_trace(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_convert(flags: &Flags) -> Result<(), String> {
    let [path] = flags.positional.as_slice() else {
        return Err("convert needs exactly one trace file".to_string());
    };
    let trace = load_trace(path)?;
    let s = pattern_string(&trace, byte_mode(flags));
    println!("{s}");
    Ok(())
}

fn cmd_compare(flags: &Flags) -> Result<(), String> {
    let [pa, pb] = flags.positional.as_slice() else {
        return Err("compare needs exactly two trace files".to_string());
    };
    let (ta, tb) = (load_trace(pa)?, load_trace(pb)?);
    let mode = byte_mode(flags);
    // One interner across both inputs: token ids in diagnostic output are
    // only comparable when minted by the same TokenInterner.
    let mut interner = TokenInterner::new();
    let a = interner.intern_string(&pattern_string(&ta, mode));
    let b = interner.intern_string(&pattern_string(&tb, mode));
    let kernel = KastKernel::new(KastOptions::with_cut_weight(flags.cut));
    if flags.explain {
        print!("{}", explain_similarity(&kernel, &a, &b, &interner));
    } else {
        println!("raw        {}", kernel.raw(&a, &b));
        println!("normalised {:.6}", kernel.normalized(&a, &b));
    }
    Ok(())
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let [dir] = flags.positional.as_slice() else {
        return Err("generate needs exactly one output directory".to_string());
    };
    let dataset = Dataset::paper(flags.seed);
    export_dataset(&dataset, Path::new(dir)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} traces (A/B/C/D = {:?}) and MANIFEST to {dir}",
        dataset.len(),
        dataset.counts()
    );
    Ok(())
}

fn cmd_cluster(flags: &Flags) -> Result<(), String> {
    let [dir] = flags.positional.as_slice() else {
        return Err("cluster needs exactly one dataset directory".to_string());
    };
    let dataset = import_dataset(Path::new(dir)).map_err(|e| e.to_string())?;
    let mode = byte_mode(flags);
    let mut interner = TokenInterner::new();
    let strings: Vec<_> =
        dataset.iter().map(|e| interner.intern_string(&pattern_string(&e.trace, mode))).collect();
    let kernel = KastKernel::new(KastOptions::with_cut_weight(flags.cut));
    let gram = gram_matrix(&kernel, &strings, GramMode::Normalized, 0);
    let square = SquareMatrix::from_row_major(gram.n(), gram.as_slice().to_vec());
    let repair = psd_repair(&square).map_err(|e| e.to_string())?;
    let distance = DistanceMatrix::from_gram(repair.matrix.n(), repair.matrix.as_slice());
    let labels = hierarchical(&distance, Linkage::Single).cut(flags.groups.min(dataset.len()));

    println!(
        "{} examples, cut weight {}, {:?}, {} clusters, {} eigenvalues clamped",
        dataset.len(),
        flags.cut,
        mode,
        flags.groups,
        repair.clamped
    );
    for cluster in 0..flags.groups {
        let members: Vec<&str> = dataset
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l == cluster)
            .map(|(e, _)| e.name.as_str())
            .collect();
        if !members.is_empty() {
            println!("cluster {cluster} ({} members): {}", members.len(), members.join(" "));
        }
    }
    let truth = dataset.labels();
    println!("purity vs categories: {:.3}", purity(&labels, &truth));
    println!("ARI vs categories   : {:.3}", adjusted_rand_index(&labels, &truth));
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    if !flags.positional.is_empty() {
        return Err("serve takes no positional arguments".to_string());
    }
    if flags.snapshot_every > 0 && flags.save.is_none() {
        return Err("--snapshot-every needs --save <dir> (the snapshot target)".to_string());
    }
    if flags.wal && flags.save.is_none() {
        return Err(
            "--wal needs --save <dir> (the durable root for snapshot/ and wal/)".to_string()
        );
    }
    let opts = IndexOptions {
        kast: KastOptions::with_cut_weight(flags.cut),
        byte_mode: byte_mode(flags),
        shards: flags.shards,
        prefilter: PrefilterConfig {
            min_candidates: flags.candidates,
            ..PrefilterConfig::default()
        },
        ..IndexOptions::default()
    };
    let index = match &flags.corpus {
        Some(dir) => {
            let index = load_index(Path::new(dir), opts).map_err(|e| e.to_string())?;
            eprintln!("loaded {} entries from {dir}", index.len());
            index
        }
        None => PatternIndex::new(opts),
    };
    let save_dir = flags.save.as_ref().map(PathBuf::from);

    // The establish sequence for --wal: open the logs, fold whatever is
    // already in memory (a --corpus preload — possibly itself recovered
    // via WAL replay — or nothing) into a fresh establishing snapshot,
    // then empty the logs. Blunt truncation is safe here and only here:
    // the listener is not up yet, so no ingest can be in flight — and it
    // neutralises stale or foreign records that would otherwise alias
    // the ids this run is about to assign.
    let wal = match (&save_dir, flags.wal) {
        (Some(dir), true) => {
            let wal = kastio::WalManager::open(
                dir,
                flags.shards,
                Duration::from_micros(flags.wal_sync_micros),
            )
            .map_err(|e| format!("cannot open the WAL under {}: {e}", dir.display()))?;
            kastio::save_index_wal(&index, dir, Some(&wal))
                .map_err(|e| format!("establishing snapshot in {} failed: {e}", dir.display()))?;
            wal.truncate_all()
                .map_err(|e| format!("cannot reset the WAL under {}: {e}", dir.display()))?;
            Some(wal)
        }
        _ => None,
    };

    let runtime = match &flags.runtime {
        Some(name) => name.parse::<kastio::RuntimeKind>()?,
        None => kastio::RuntimeKind::default(),
    };

    let mut server = Server::bind(&format!("127.0.0.1:{}", flags.port), index)
        .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", flags.port))?
        .with_runtime(runtime)
        .with_save_dir(save_dir.clone())
        .with_wal(wal.clone())
        .with_slow_log(flags.slow_query_micros)
        .with_memory_limit(flags.max_memory_bytes)
        .with_idle_timeout(flags.idle_timeout_secs.map(Duration::from_secs));
    if let Some(max) = flags.max_connections {
        server = server.with_max_connections(max);
    }
    let addr = server.local_addr().map_err(|e| e.to_string())?;

    // Signal-triggered shutdown: SIGTERM/SIGINT snapshot the corpus (when
    // --save is set) and then stop the listener exactly like a SHUTDOWN
    // request would — the daemon is crash-tolerant under orchestrators
    // that only ever send signals.
    let shutdown = server.shutdown_handle().map_err(|e| e.to_string())?;
    let signal_index = server.index();
    let signal_save = save_dir.clone();
    let signal_wal = wal.clone();
    match watch_termination() {
        Ok(watcher) => {
            std::thread::Builder::new()
                .name("kastio-signal".to_string())
                .spawn(move || {
                    let Ok(signal) = watcher.wait() else { return };
                    eprintln!("received {signal}, snapshotting and shutting down");
                    if let Some(dir) = &signal_save {
                        if let Err(e) = kastio::save_index_if_changed_wal(
                            &signal_index,
                            dir,
                            signal_wal.as_deref(),
                        ) {
                            eprintln!("snapshot on {signal} failed: {e}");
                        }
                    }
                    shutdown.shutdown();
                })
                .map_err(|e| format!("cannot spawn the signal monitor: {e}"))?;
        }
        Err(e) => eprintln!("warning: signal handling unavailable ({e}); use SHUTDOWN"),
    }

    // Periodic background snapshots, skipped while the generation counter
    // is unchanged. Dropped (stopped and joined) before the final save.
    let snapshotter = match (&save_dir, flags.snapshot_every) {
        (Some(dir), secs) if secs > 0 => Some(Snapshotter::start_with_wal(
            server.index(),
            dir.clone(),
            std::time::Duration::from_secs(secs),
            wal.clone(),
        )),
        _ => None,
    };

    println!("listening on {addr}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let index = server.serve().map_err(|e| format!("serve failed: {e}"))?;
    drop(snapshotter);

    // Final save. Usually a no-op: SHUTDOWN and the signal path have
    // already snapshotted, so this only runs when the corpus changed
    // after that snapshot (or when every earlier save failed) — and a
    // failure here must be loud: stderr + non-zero exit.
    if let Some(dir) = &save_dir {
        match kastio::save_index_if_changed_wal(&index, dir, wal.as_deref()) {
            Ok(Some(info)) => println!(
                "saved {} entries to {} (generation {})",
                info.entries,
                dir.display(),
                info.generation
            ),
            Ok(None) => {
                let status = index.snapshot_status();
                println!(
                    "corpus already saved to {} ({} entries, generation {})",
                    dir.display(),
                    status.last_entries,
                    status.last_generation
                );
            }
            Err(e) => {
                return Err(format!(
                    "failed to save {} entries to {}: {e}",
                    index.len(),
                    dir.display()
                ));
            }
        }
    }
    Ok(())
}

fn cmd_query(flags: &Flags) -> Result<(), String> {
    if flags.stats && flags.snapshot {
        return Err("--stats and --snapshot are mutually exclusive".to_string());
    }
    let (addr, request) = match flags.positional.as_slice() {
        [addr] if flags.stats => (addr, "STATS\n".to_string()),
        [addr] if flags.snapshot => (addr, "SAVE\n".to_string()),
        [addr, trace_file] if !flags.stats && !flags.snapshot => {
            let trace = load_trace(trace_file)?;
            if trace.is_empty() {
                return Err(format!("{trace_file} contains no operations"));
            }
            (addr, format!("QUERY k={} {}\n", flags.k, encode_trace_inline(&trace)))
        }
        _ => {
            return Err(
                "query needs `<addr> <trace-file>`, `<addr> --stats` or `<addr> --snapshot`"
                    .to_string(),
            )
        }
    };
    let stream =
        TcpStream::connect(addr.as_str()).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);

    // Version handshake first. Servers predating HELLO answer `ERR
    // unknown verb` — tolerated, the connection stays usable. An explicit
    // version rejection is fatal: the reply framing may differ.
    writer
        .write_all(format!("HELLO {PROTOCOL_VERSION} kastio-query\n").as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| e.to_string())?;
    let hello = read_reply(&mut reader).map_err(|e| e.to_string())?;
    if hello.starts_with("ERR unsupported proto") {
        return Err(format!("protocol version mismatch: {}", hello.trim_end()));
    }

    writer.write_all(request.as_bytes()).map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let reply = read_reply(&mut reader).map_err(|e| e.to_string())?;
    print!("{reply}");
    if reply.starts_with("ERR ") {
        return Err("server rejected the request".to_string());
    }
    Ok(())
}

fn cmd_loadgen(flags: &Flags) -> Result<(), String> {
    if !flags.positional.is_empty() {
        return Err("loadgen takes no positional arguments".to_string());
    }
    let scenarios = match flags.scenario.as_deref() {
        None | Some("all") => ScenarioKind::ALL.to_vec(),
        Some(name) => vec![ScenarioKind::parse(name).ok_or_else(|| {
            format!(
                "unknown scenario `{name}` (read-heavy | write-heavy | hot-key | save-storm | \
                 overload | snapshot-stall | churn | all)"
            )
        })?],
    };

    if flags.dry_run {
        for &kind in &scenarios {
            print!("{}", dry_run_trace(kind, flags.seed, flags.clients, flags.ops));
        }
        return Ok(());
    }

    let config = LoadConfig {
        scenarios,
        clients: flags.clients,
        duration: flags.duration,
        seed: flags.seed,
        addr: flags.addr.clone(),
        shards: flags.shards,
        max_memory_bytes: flags.max_memory_bytes,
        ..LoadConfig::default()
    };
    let report = kastio::loadgen::run(&config)?;

    for scenario in &report.scenarios {
        println!(
            "{}: {} requests in {:.2}s ({:.0} req/s, {} ERR)",
            scenario.name,
            scenario.requests,
            scenario.elapsed_secs,
            scenario.throughput_rps,
            scenario.errors
        );
        for verb in &scenario.per_verb {
            println!(
                "  {:<7} n={:<6} {:>7.0} req/s  p50={:.0}us p95={:.0}us p99={:.0}us",
                verb.verb, verb.count, verb.throughput_rps, verb.p50_us, verb.p95_us, verb.p99_us
            );
        }
    }
    let out = flags.out.as_deref().unwrap_or("BENCH_serve.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_bench_diff(flags: &Flags) -> Result<(), String> {
    let [new_path, baseline_path] = flags.positional.as_slice() else {
        return Err("bench-diff needs exactly `<new.json> <baseline.json>`".to_string());
    };
    let read = |path: &str| -> Result<kastio::loadgen::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        kastio::loadgen::parse_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let diff = kastio::loadgen::diff_reports(
        &read(new_path)?,
        &read(baseline_path)?,
        flags.band as f64 / 100.0,
    )?;
    print!("{}", diff.render());
    let regressions = diff.regressions();
    if regressions.is_empty() {
        println!("ok: {} metrics within ±{}% of {baseline_path}", diff.rows.len(), flags.band);
        Ok(())
    } else {
        Err(format!(
            "{} of {} metrics regressed beyond ±{}% (new: {new_path}, baseline: {baseline_path})",
            regressions.len(),
            diff.rows.len(),
            flags.band
        ))
    }
}

fn cmd_help(flags: &Flags) -> Result<(), String> {
    match flags.positional.as_slice() {
        [] => {
            print!("{USAGE}");
            Ok(())
        }
        [topic] => match HELP_TOPICS.iter().find(|(name, _)| name == topic) {
            Some((_, text)) => {
                print!("{text}");
                Ok(())
            }
            None => Err(format!(
                "no help for `{topic}` (topics: convert compare generate cluster serve query \
                 loadgen bench-diff)"
            )),
        },
        _ => Err("help takes at most one command name".to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if matches!(command.as_str(), "--version" | "-V" | "version") {
        println!("kastio {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags(rest) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "convert" => cmd_convert(&flags),
        "compare" => cmd_compare(&flags),
        "generate" => cmd_generate(&flags),
        "cluster" => cmd_cluster(&flags),
        "serve" => cmd_serve(&flags),
        "query" => cmd_query(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "bench-diff" => cmd_bench_diff(&flags),
        "help" => cmd_help(&flags),
        "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
